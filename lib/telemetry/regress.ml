type row = {
  r_section : string;
  r_name : string;
  r_quick : bool;
  r_ns_per_op : float;
  r_steps : int option;
}

type baseline = {
  b_cores : int;
  b_default_tol : float;
  b_tols : (string * float) list;
  b_core_sensitive : string list;
  b_min_ns : float;
  b_rows : row list;
}

type finding =
  | Regression of { row : row; base : row; tol : float }
  | Steps_mismatch of { row : row; base : row }
  | Missing of row
  | Improvement of { row : row; base : row }
  | New_row of row

type report = {
  findings : finding list;
  regressions : int;
  compared : int;
  skipped_sections : string list;
}

let default_tolerance = 2.0
let default_core_sensitive = [ "parallel"; "telemetry" ]
let default_min_ns = 5.0

(* ------------------------------------------------------------------ *)
(* Parsing *)

let ( let* ) r f = Result.bind r f

let parse_row j =
  let str k =
    match Option.bind (Json.member k j) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "row missing string field %S" k)
  in
  let* section = str "section" in
  let* name = str "name" in
  let* ns =
    match Option.bind (Json.member "ns_per_op" j) Json.to_float with
    | Some f -> Ok f
    | None -> Error "row missing numeric field \"ns_per_op\""
  in
  let quick =
    match
      Option.bind (Json.member "params" j) (fun p ->
          Option.bind (Json.member "quick" p) Json.to_bool)
    with
    | Some b -> b
    | None -> false
  in
  let steps =
    match Json.member "steps" j with
    | Some (Json.Num _ as n) -> Json.to_int n
    | _ -> None
  in
  Ok
    {
      r_section = section;
      r_name = name;
      r_quick = quick;
      r_ns_per_op = ns;
      r_steps = steps;
    }

let parse_rows j =
  match Json.to_list j with
  | None -> Error "expected a JSON array of bench rows"
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* row = parse_row item in
            go (row :: acc) rest
      in
      go [] items

let parse_baseline j =
  let* rows =
    match Json.member "rows" j with
    | Some r -> parse_rows r
    | None -> Error "baseline missing \"rows\""
  in
  let meta = Option.value (Json.member "meta" j) ~default:(Json.Obj []) in
  let num k default =
    match Option.bind (Json.member k meta) Json.to_float with
    | Some f -> f
    | None -> default
  in
  let cores =
    match Option.bind (Json.member "cores" meta) Json.to_int with
    | Some c -> c
    | None -> 1
  in
  let tols =
    match Json.member "tolerance" meta with
    | Some (Json.Obj members) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
          members
    | _ -> []
  in
  let core_sensitive =
    match Option.bind (Json.member "core_sensitive" meta) Json.to_list with
    | Some items -> List.filter_map Json.to_str items
    | None -> default_core_sensitive
  in
  Ok
    {
      b_cores = cores;
      b_default_tol = num "default_tolerance" default_tolerance;
      b_tols = tols;
      b_core_sensitive = core_sensitive;
      b_min_ns = num "min_ns" default_min_ns;
      b_rows = rows;
    }

(* ------------------------------------------------------------------ *)
(* Comparison *)

let tolerance_for b section =
  match List.assoc_opt section b.b_tols with
  | Some t -> t
  | None -> b.b_default_tol

let key r = (r.r_section, r.r_name)

let compare b current ~cores =
  let skipped =
    if cores >= b.b_cores then []
    else List.filter (fun s -> s <> "") b.b_core_sensitive
  in
  let is_skipped section = List.mem section skipped in
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace cur_tbl (key r) r) current;
  let base_keys = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace base_keys (key r) ()) b.b_rows;
  let findings = ref [] and regressions = ref 0 and compared = ref 0 in
  let emit ?(bad = false) f =
    findings := f :: !findings;
    if bad then incr regressions
  in
  List.iter
    (fun base ->
      if not (is_skipped base.r_section) then
        match Hashtbl.find_opt cur_tbl (key base) with
        | None -> emit ~bad:true (Missing base)
        | Some row ->
            incr compared;
            let tol = tolerance_for b base.r_section in
            let steps_differ =
              match (base.r_steps, row.r_steps) with
              | Some a, Some c -> a <> c
              | _ -> false
            in
            if steps_differ then emit ~bad:true (Steps_mismatch { row; base })
            else if
              base.r_ns_per_op >= b.b_min_ns
              && row.r_ns_per_op > base.r_ns_per_op *. (1.0 +. tol)
            then emit ~bad:true (Regression { row; base; tol })
            else if
              base.r_ns_per_op >= b.b_min_ns
              && row.r_ns_per_op < base.r_ns_per_op *. 0.75
            then emit (Improvement { row; base }))
    b.b_rows;
  List.iter
    (fun row ->
      if
        (not (Hashtbl.mem base_keys (key row)))
        && not (is_skipped row.r_section)
      then emit (New_row row))
    current;
  let severity = function
    | Regression _ | Steps_mismatch _ | Missing _ -> 0
    | Improvement _ -> 1
    | New_row _ -> 2
  in
  let findings =
    List.stable_sort
      (fun a b -> Stdlib.compare (severity a) (severity b))
      (List.rev !findings)
  in
  {
    findings;
    regressions = !regressions;
    compared = !compared;
    skipped_sections = skipped;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render report =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if report.skipped_sections <> [] then
    p "SKIPPED (fewer cores than baseline machine): %s"
      (String.concat ", " report.skipped_sections);
  List.iter
    (fun f ->
      match f with
      | Regression { row; base; tol } ->
          p "REGRESSION  %s/%s: %.1f ns/op vs baseline %.1f ns/op (+%.0f%%, tolerance +%.0f%%)"
            row.r_section row.r_name row.r_ns_per_op base.r_ns_per_op
            ((row.r_ns_per_op /. base.r_ns_per_op -. 1.0) *. 100.0)
            (tol *. 100.0)
      | Steps_mismatch { row; base } ->
          p "REGRESSION  %s/%s: steps %s vs baseline %s (deterministic count must match)"
            row.r_section row.r_name
            (match row.r_steps with Some s -> string_of_int s | None -> "-")
            (match base.r_steps with Some s -> string_of_int s | None -> "-")
      | Missing base ->
          p "REGRESSION  %s/%s: present in baseline but missing from this run"
            base.r_section base.r_name
      | Improvement { row; base } ->
          p "improved    %s/%s: %.1f ns/op vs baseline %.1f ns/op (%.0f%% faster)"
            row.r_section row.r_name row.r_ns_per_op base.r_ns_per_op
            ((1.0 -. (row.r_ns_per_op /. base.r_ns_per_op)) *. 100.0)
      | New_row row ->
          p "new row     %s/%s (not in baseline; refresh with --update)"
            row.r_section row.r_name)
    report.findings;
  p "%d row(s) compared, %d regression(s)%s" report.compared report.regressions
    (if report.skipped_sections = [] then ""
     else Printf.sprintf ", %d section(s) skipped"
            (List.length report.skipped_sections));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Baseline construction / serialisation *)

let baseline_of_rows ~prev ~cores rows =
  match prev with
  | Some b -> { b with b_cores = cores; b_rows = rows }
  | None ->
      {
        b_cores = cores;
        b_default_tol = default_tolerance;
        b_tols = [];
        b_core_sensitive = default_core_sensitive;
        b_min_ns = default_min_ns;
        b_rows = rows;
      }

let row_to_json r =
  Json.Obj
    [
      ("section", Json.Str r.r_section);
      ("name", Json.Str r.r_name);
      ("params", Json.Obj [ ("quick", Json.Bool r.r_quick) ]);
      ("ns_per_op", Json.Num r.r_ns_per_op);
      ( "steps",
        match r.r_steps with
        | Some s -> Json.Num (float_of_int s)
        | None -> Json.Null );
    ]

let baseline_to_json b =
  Json.Obj
    [
      ( "meta",
        Json.Obj
          [
            ("cores", Json.Num (float_of_int b.b_cores));
            ("default_tolerance", Json.Num b.b_default_tol);
            ( "tolerance",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) b.b_tols) );
            ( "core_sensitive",
              Json.Arr (List.map (fun s -> Json.Str s) b.b_core_sensitive) );
            ("min_ns", Json.Num b.b_min_ns);
          ] );
      ("rows", Json.Arr (List.map row_to_json b.b_rows));
    ]
