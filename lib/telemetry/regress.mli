(** Bench baseline comparator — the logic behind [bench/check_regress.exe].

    A committed [bench/baseline.json] pins the expected bench rows
    together with the tolerance policy used to judge them:

    {v
    { "meta": { "cores": 8,
                "default_tolerance": 2.0,
                "tolerance": { "micro": 2.0, ... },
                "core_sensitive": ["parallel", "telemetry"],
                "min_ns": 5.0 },
      "rows": [ {"section","name","params":{"quick":bool},
                 "ns_per_op", "steps"} ... ] }
    v}

    Timing rows regress when [ns_per_op] exceeds
    [baseline * (1 + tolerance)] for their section; [steps] rows are
    deterministic interpreter step counts and must match exactly.
    Sections listed in [core_sensitive] are skipped loudly when the
    current machine has fewer cores than the baseline machine — a
    laptop must not fail the gate recorded on a larger box.  Rows
    whose baseline is under [min_ns] are too close to timer noise for
    a relative band and only have their [steps] checked. *)

type row = {
  r_section : string;
  r_name : string;
  r_quick : bool;
  r_ns_per_op : float;
  r_steps : int option;
}

type baseline = {
  b_cores : int;
  b_default_tol : float;
  b_tols : (string * float) list;  (** per-section overrides *)
  b_core_sensitive : string list;
  b_min_ns : float;
  b_rows : row list;
}

type finding =
  | Regression of { row : row; base : row; tol : float }
  | Steps_mismatch of { row : row; base : row }
  | Missing of row  (** baseline row absent from the current run *)
  | Improvement of { row : row; base : row }  (** >= 25% faster *)
  | New_row of row  (** current row absent from the baseline *)

type report = {
  findings : finding list;
  regressions : int;  (** Regression + Steps_mismatch + Missing *)
  compared : int;
  skipped_sections : string list;
}

val parse_rows : Json.t -> (row list, string) result
(** Accepts the bench [--json] output: a bare array of row objects. *)

val parse_baseline : Json.t -> (baseline, string) result

val compare : baseline -> row list -> cores:int -> report
(** Compare a current run against the baseline on a machine with
    [cores] cores. *)

val render : report -> string
(** Human-readable report, regressions first. *)

val baseline_of_rows :
  prev:baseline option -> cores:int -> row list -> baseline
(** Build a fresh baseline from a run, inheriting the tolerance policy
    from [prev] when given (defaults otherwise). *)

val baseline_to_json : baseline -> Json.t

val default_tolerance : float
val default_core_sensitive : string list
val default_min_ns : float
