type 'a t = {
  slots : 'a option array;
  mutable next : int;
  mutable count : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0; count = 0 }

let capacity t = Array.length t.slots

let push t x =
  let cap = Array.length t.slots in
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod cap;
  if t.count < cap then t.count <- t.count + 1

let length t = t.count

let to_list t =
  let cap = Array.length t.slots in
  let out = ref [] in
  for k = t.count downto 1 do
    (* k-th newest lives at next - k (mod cap). *)
    let i = ((t.next - k) mod cap + cap) mod cap in
    match t.slots.(i) with None -> () | Some x -> out := x :: !out
  done;
  !out

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.count <- 0
