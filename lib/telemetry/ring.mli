(** Fixed-capacity overwrite ring.

    Keeps the most recent [capacity] entries; pushing into a full ring
    silently replaces the oldest.  This is the storage discipline shared
    by the enclave fault log and the flight recorder: bounded memory,
    newest-first inspection, O(1) push. *)

type 'a t

val create : int -> 'a t
(** [create capacity] — requires [capacity > 0]. *)

val push : 'a t -> 'a -> unit
val length : 'a t -> int
val capacity : 'a t -> int

val to_list : 'a t -> 'a list
(** Newest first. *)

val clear : 'a t -> unit
