module Time = Eden_base.Time
module Rng = Eden_base.Rng

type verdict =
  | Forwarded
  | Queued of int
  | Dropped

type event = {
  ev_seq : int;
  ev_pkt_id : int64;
  ev_start : Time.t;
  ev_classify_ns : float;
  ev_match_ns : float;
  ev_action : string;
  ev_action_ns : float;
  ev_total_ns : float;
  ev_verdict : verdict;
}

type t = {
  cap : int;
  every : int;
  phase : int;  (* seed-derived offset into the 1-in-[every] cycle *)
  mutable tick : int;  (* packets seen since creation / clear *)
  mutable cur : int;  (* open slot, -1 when none *)
  mutable next : int;  (* next slot to fill *)
  mutable filled : int;  (* live slots, <= cap *)
  mutable total : int;  (* events recorded since creation / clear *)
  seq : int array;
  pkt_id : int64 array;
  start_ns : int64 array;
  classify_ns : float array;
  match_ns : float array;
  action_ns : float array;
  total_ns : float array;
  action : string array;
  verd : int array;  (* 0 = forwarded, 1 = queued, 2 = dropped *)
  queue : int array;
}

let create ?(seed = 0L) ?(every = 64) ~capacity () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if every <= 0 then invalid_arg "Trace.create: every must be positive";
  let phase = if every = 1 then 0 else Rng.int (Rng.create seed) every in
  {
    cap = capacity;
    every;
    phase;
    tick = 0;
    cur = -1;
    next = 0;
    filled = 0;
    total = 0;
    seq = Array.make capacity 0;
    pkt_id = Array.make capacity 0L;
    start_ns = Array.make capacity 0L;
    classify_ns = Array.make capacity 0.0;
    match_ns = Array.make capacity 0.0;
    action_ns = Array.make capacity 0.0;
    total_ns = Array.make capacity 0.0;
    action = Array.make capacity "";
    verd = Array.make capacity 0;
    queue = Array.make capacity (-1);
  }

let every t = t.every
let capacity t = t.cap

let begin_packet t ~now ~pkt_id =
  let tick = t.tick in
  t.tick <- tick + 1;
  if (tick + t.phase) mod t.every <> 0 then false
  else begin
    let i = t.next in
    t.cur <- i;
    t.next <- (i + 1) mod t.cap;
    if t.filled < t.cap then t.filled <- t.filled + 1;
    t.total <- t.total + 1;
    t.seq.(i) <- tick;
    t.pkt_id.(i) <- pkt_id;
    t.start_ns.(i) <- Time.to_ns now;
    t.classify_ns.(i) <- 0.0;
    t.match_ns.(i) <- 0.0;
    t.action_ns.(i) <- 0.0;
    t.total_ns.(i) <- 0.0;
    t.action.(i) <- "";
    t.verd.(i) <- 0;
    t.queue.(i) <- -1;
    true
  end

let set_classify t ns = if t.cur >= 0 then t.classify_ns.(t.cur) <- ns
let set_match t ns = if t.cur >= 0 then t.match_ns.(t.cur) <- ns

let set_action t name ns =
  if t.cur >= 0 then begin
    t.action.(t.cur) <- name;
    t.action_ns.(t.cur) <- ns
  end

let current_action_ns t = if t.cur >= 0 then t.action_ns.(t.cur) else 0.0

let finish t ~verdict ~total_ns =
  if t.cur >= 0 then begin
    let i = t.cur in
    t.total_ns.(i) <- total_ns;
    (match verdict with
    | Forwarded -> t.verd.(i) <- 0
    | Queued q ->
        t.verd.(i) <- 1;
        t.queue.(i) <- q
    | Dropped -> t.verd.(i) <- 2);
    t.cur <- -1
  end

let event_at t i =
  {
    ev_seq = t.seq.(i);
    ev_pkt_id = t.pkt_id.(i);
    ev_start = t.start_ns.(i);
    ev_classify_ns = t.classify_ns.(i);
    ev_match_ns = t.match_ns.(i);
    ev_action = t.action.(i);
    ev_action_ns = t.action_ns.(i);
    ev_total_ns = t.total_ns.(i);
    ev_verdict =
      (match t.verd.(i) with
      | 0 -> Forwarded
      | 1 -> Queued t.queue.(i)
      | _ -> Dropped);
  }

let events t =
  let out = ref [] in
  for k = t.filled downto 1 do
    (* k-th newest filled slot is at next - k (mod cap). *)
    let i = ((t.next - k) mod t.cap + t.cap) mod t.cap in
    if i <> t.cur then out := event_at t i :: !out
  done;
  !out

let recorded t = t.total

let clear t =
  t.tick <- 0;
  t.cur <- -1;
  t.next <- 0;
  t.filled <- 0;
  t.total <- 0

let pp_verdict ppf = function
  | Forwarded -> Format.fprintf ppf "forward"
  | Queued q -> Format.fprintf ppf "queue=%d" q
  | Dropped -> Format.fprintf ppf "drop"

let pp_dump ppf t =
  let evs = events t in
  Format.fprintf ppf "flight recorder: %d/%d slots, 1-in-%d sampling, %d recorded@."
    t.filled t.cap t.every t.total;
  List.iter
    (fun e ->
      Format.fprintf ppf
        "  #%-6d pkt=%-8Ld t=%a  classify=%.0fns match=%.0fns action=%s/%.0fns \
         total=%.0fns -> %a@."
        e.ev_seq e.ev_pkt_id Time.pp e.ev_start e.ev_classify_ns e.ev_match_ns
        (if e.ev_action = "" then "-" else e.ev_action)
        e.ev_action_ns e.ev_total_ns pp_verdict e.ev_verdict)
    evs
