(** Sampled packet-path flight recorder.

    A fixed-size ring of trace events recording the per-stage cost-model
    timings of sampled packets: classify -> table match -> action ->
    queue/drop.  Storage is struct-of-arrays, preallocated at creation:
    recording a sampled packet writes into flat [int]/[float]/[string]
    array slots and allocates nothing; an unsampled packet costs one
    integer increment and one comparison ([begin_packet] returning
    [false]).

    Sampling is deterministic 1-in-[every]: the recorder fires on a
    fixed phase of the packet tick derived from its seed, so a replica
    seeded with [Rng.stream_seed seed i] always samples the same packets
    of its stream — traces are replayable from the experiment seed, like
    everything else in the simulator. *)

type t

type verdict =
  | Forwarded
  | Queued of int  (** PIAS-style priority queue index *)
  | Dropped

type event = {
  ev_seq : int;  (** packet tick at which the event was recorded *)
  ev_pkt_id : int64;
  ev_start : Eden_base.Time.t;  (** simulated arrival time *)
  ev_classify_ns : float;
  ev_match_ns : float;
  ev_action : string;  (** "" when no rule matched *)
  ev_action_ns : float;
  ev_total_ns : float;
  ev_verdict : verdict;
}

val create : ?seed:int64 -> ?every:int -> capacity:int -> unit -> t
(** [create ~capacity ()] — ring of [capacity] events, sampling 1 in
    [every] (default 64) packets, phase derived from [seed] (default
    0L).  Requires [capacity > 0] and [every > 0]. *)

val every : t -> int
val capacity : t -> int

val begin_packet : t -> now:Eden_base.Time.t -> pkt_id:int64 -> bool
(** Advance the packet tick; if this packet is sampled, open a slot and
    return [true].  Stage setters apply to the open slot and are no-ops
    when no slot is open. *)

val set_classify : t -> float -> unit
val set_match : t -> float -> unit
val set_action : t -> string -> float -> unit

val current_action_ns : t -> float
(** Action time recorded so far into the open slot (0 when none) — lets
    the instrumentation compute stage residuals without re-reading the
    ring. *)

val finish : t -> verdict:verdict -> total_ns:float -> unit
(** Seal the open slot (no-op when none). *)

val events : t -> event list
(** Recorded events, newest first. *)

val recorded : t -> int
(** Total events recorded since creation (may exceed [capacity]). *)

val clear : t -> unit
(** Drop all events and restart the sampling phase. *)

val pp_dump : Format.formatter -> t -> unit
(** Human-readable dump, newest first. *)
