(* Shared random-program generator for differential test suites.

   Programs are built through the assembler with fresh labels, so jumps
   are always in-range and stack depths consistent — the verifier
   accepts them by construction.  Operand values are arbitrary, so
   checked array accesses, Div/Rem, Rand, Newarr and heap refs fault
   with realistic frequency, and small step limits force mid-block
   step-limit faults.  Used by the compiled-engine differential
   (test_compiled) and the sharded-data-path differential
   (test_parallel). *)

open Eden_bytecode
module Op = Opcode
module G = QCheck.Gen

(* Generates (program, initial scalars, initial arrays).  Slot layout:
   scalar "In" (Packet, RO, local 0) and "Out" (Packet, RW, local 1);
   arrays "A" (Global, RO, slot 0) and "B" (Global, RW, slot 1). *)
let gen_structured : (Program.t * int64 array * int64 array array) G.t =
 fun rand ->
  let buf = ref [] in
  let emit i = buf := i :: !buf in
  let label_ctr = ref 0 in
  let fresh () =
    incr label_ctr;
    Printf.sprintf "L%d" !label_ctr
  in
  let int_range a b = G.int_range a b rand in
  let pick l = List.nth l (int_range 0 (List.length l - 1)) in
  let const () =
    pick [ -2L; -1L; 0L; 1L; 2L; 3L; 5L; 7L; 100L; 1024L; Int64.max_int ]
  in
  (* Expressions leave exactly one value; depth bounds nesting so the
     static operand stack stays within stack_limit. *)
  let rec expr depth =
    let leaf () =
      match int_range 0 3 with
      | 0 | 1 -> emit (Asm.I (Op.Push (const ())))
      | 2 -> emit (Asm.I (Op.Load (int_range 0 3)))
      | _ -> emit (Asm.I Op.Clock)
    in
    if depth = 0 then leaf ()
    else
      match int_range 0 11 with
      | 0 | 1 -> leaf ()
      | 2 ->
        expr (depth - 1);
        expr (depth - 1);
        emit
          (Asm.I
             (pick
                [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Rem; Op.Band; Op.Bor; Op.Bxor;
                  Op.Shl; Op.Shr; Op.Eq; Op.Ne; Op.Lt; Op.Le; Op.Gt; Op.Ge; Op.Hashmix ]))
      | 3 ->
        expr (depth - 1);
        emit (Asm.I (pick [ Op.Neg; Op.Not ]))
      | 4 ->
        expr (depth - 1);
        emit (Asm.I (Op.Gaload (int_range 0 1)))
      | 5 -> emit (Asm.I (Op.Galen (int_range 0 1)))
      | 6 ->
        expr (depth - 1);
        emit (Asm.I Op.Rand)
      | 7 ->
        expr (depth - 1);
        emit (Asm.I Op.Newarr)
      | 8 ->
        expr (depth - 1);
        expr (depth - 1);
        emit (Asm.I Op.Aload)
      | 9 ->
        expr (depth - 1);
        emit (Asm.I Op.Alen)
      | 10 ->
        expr (depth - 1);
        emit (Asm.I Op.Dup);
        emit (Asm.I (pick [ Op.Add; Op.Mul; Op.Pop ]));
        if pick [ true; false ] then () else emit (Asm.I Op.Neg)
      | _ ->
        expr (depth - 1);
        expr (depth - 1);
        emit (Asm.I Op.Swap);
        emit (Asm.I (pick [ Op.Sub; Op.Pop ]))
  in
  (* Statements leave the stack as they found it. *)
  let rec stmt fuel =
    if fuel <= 0 then ()
    else
      match int_range 0 9 with
      | 0 | 1 ->
        expr (int_range 0 3);
        emit (Asm.I (Op.Store (int_range 0 3)))
      | 2 ->
        expr (int_range 0 3);
        emit (Asm.I Op.Pop)
      | 3 ->
        expr (int_range 0 2);
        expr (int_range 0 2);
        emit (Asm.I (Op.Gastore 1)) (* slot 1 is the read-write array *)
      | 4 ->
        expr (int_range 0 1);
        expr (int_range 0 1);
        expr (int_range 0 1);
        emit (Asm.I Op.Astore)
      | 5 | 6 ->
        (* if / else *)
        let l_else = fresh () and l_end = fresh () in
        expr (int_range 0 2);
        emit (pick [ Asm.Jz_l l_else; Asm.Jnz_l l_else ]);
        stmt (fuel / 2);
        emit (Asm.Jmp_l l_end);
        emit (Asm.Label l_else);
        stmt (fuel / 2);
        emit (Asm.Label l_end)
      | 7 ->
        (* bounded counting loop over a dedicated local *)
        let l_top = fresh () and l_done = fresh () in
        emit (Asm.I (Op.Push (Int64.of_int (int_range 0 6))));
        emit (Asm.I (Op.Store 3));
        emit (Asm.Label l_top);
        emit (Asm.I (Op.Load 3));
        emit (Asm.Jz_l l_done);
        stmt (fuel / 3);
        emit (Asm.I (Op.Load 3));
        emit (Asm.I (Op.Push 1L));
        emit (Asm.I Op.Sub);
        emit (Asm.I (Op.Store 3));
        emit (Asm.Jmp_l l_top);
        emit (Asm.Label l_done)
      | 8 ->
        emit (Asm.I (pick [ Op.Halt; Op.Push 0L ]));
        if List.exists (function Asm.I Op.Halt -> true | _ -> false) [ List.hd !buf ]
        then ()
        else emit (Asm.I Op.Pop)
      | _ -> stmt (fuel - 1);
      if int_range 0 2 > 0 then stmt (fuel - 1)
  in
  stmt (int_range 1 12);
  (* Make sure something is always emitted. *)
  emit (Asm.I (Op.Push 1L));
  emit (Asm.I (Op.Store 1));
  let code = Asm.assemble_exn (List.rev !buf) in
  let scalar_slots =
    [|
      { Program.s_name = "In"; s_entity = Program.Packet; s_access = Program.Read_only;
        s_local = 0 };
      { Program.s_name = "Out"; s_entity = Program.Packet; s_access = Program.Read_write;
        s_local = 1 };
    |]
  in
  let array_slots =
    [|
      { Program.a_name = "A"; a_entity = Program.Global; a_access = Program.Read_only;
        a_min_len = 0 };
      { Program.a_name = "B"; a_entity = Program.Global; a_access = Program.Read_write;
        a_min_len = 0 };
    |]
  in
  let step_limit = pick [ 5; 9; 17; 33; 80; 250; 10_000 ] in
  let heap_limit = pick [ 0; 3; 64 ] in
  let p =
    Program.make ~name:"fuzz" ~code ~scalar_slots ~array_slots ~n_locals:4
      ~stack_limit:64 ~heap_limit ~step_limit ()
  in
  let scalars = [| const (); const () |] in
  let arrays =
    Array.init 2 (fun _ ->
        Array.init (int_range 0 4) (fun _ -> const ()))
  in
  (p, scalars, arrays)
