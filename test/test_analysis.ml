(* Tests for the install-time analysis pipeline: effect footprints,
   bounds proofs and hardening, cost admission, the AST optimizer, and
   the verifier/typechecker edge cases the pipeline leans on. *)

open Eden_analysis
module Ast = Eden_lang.Ast
module Schema = Eden_lang.Schema
module Typecheck = Eden_lang.Typecheck
module Compile = Eden_lang.Compile
module P = Eden_bytecode.Program
module Op = Eden_bytecode.Opcode
module Interp = Eden_bytecode.Interp
module Verifier = Eden_bytecode.Verifier
module Enclave = Eden_enclave.Enclave

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let now = Eden_base.Time.us 100

let compile_exn ?step_limit schema action =
  match Compile.compile ?step_limit schema action with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile: %s" (Compile.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Effect footprints of the paper functions *)

let test_effects_wcmp () =
  let fp = Effects.of_action Eden_functions.Wcmp.action in
  check_bool "writes packet.Path" true
    (List.mem (Ast.Packet, "Path", `Write) fp.Effects.fields);
  check_bool "reads _global.Paths" true
    (List.mem (Ast.Global, "Paths", `Read) fp.Effects.arrays);
  check_bool "no array writes" true
    (List.for_all (fun (_, _, a) -> a = `Read) fp.Effects.arrays);
  check_bool "uses rand" true fp.Effects.uses_rand;
  check_bool "parallel" true (Effects.concurrency fp = `Parallel)

let test_effects_pias () =
  let fp = Effects.of_action Eden_functions.Pias.action in
  check_bool "writes msg.Size" true
    (List.mem (Ast.Message, "Size", `Write) fp.Effects.fields);
  check_bool "reads _global.Thresholds" true
    (List.mem (Ast.Global, "Thresholds", `Read) fp.Effects.arrays);
  check_bool "per-message" true (Effects.concurrency fp = `Per_message)

let test_effects_sff () =
  let fp = Effects.of_action Eden_functions.Sff.action in
  check_bool "parallel: no message or global writes" true
    (Effects.concurrency fp = `Parallel)

let test_effects_port_knocking_serial () =
  let fp = Effects.of_action Eden_functions.Port_knocking.action in
  check_bool "serial: writes global state" true
    (Effects.concurrency fp = `Serial)

(* Same decision the enclave reaches from compiled slot accesses. *)
let test_effects_agree_with_enclave () =
  List.iter
    (fun (name, action, schema) ->
      let ast_level = Effects.concurrency (Effects.of_action action) in
      let program = compile_exn schema action in
      let e = Enclave.create ~host:1 () in
      (match
         Enclave.install_action e
           { Enclave.i_name = name; i_impl = Enclave.Interpreted program;
             i_msg_sources = [] }
       with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: install: %s" name msg);
      check_bool (name ^ ": AST and bytecode concurrency agree") true
        (Enclave.concurrency_of e name = Some ast_level))
    [
      ("wcmp", Eden_functions.Wcmp.action, Eden_functions.Wcmp.schema);
      ("pias", Eden_functions.Pias.action, Eden_functions.Pias.schema);
      ("sff", Eden_functions.Sff.action, Eden_functions.Sff.schema);
      ( "port_knocking",
        Eden_functions.Port_knocking.action,
        Eden_functions.Port_knocking.schema );
    ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_reject_readonly_write () =
  let action =
    let open Eden_lang.Dsl in
    action "bad" (set_pkt "Size" (int 0))
  in
  let schema = Schema.with_standard_packet () in
  check_bool "diagnostics flag the write" true
    (Effects.diagnostics schema action <> []);
  match Analyze.run schema action with
  | Error (Analyze.Rejected ds) ->
    check_bool "names the field" true (List.exists (fun d -> contains_sub d "Size") ds)
  | _ -> Alcotest.fail "expected Rejected"

(* ------------------------------------------------------------------ *)
(* Bounds proofs and hardening *)

let run_summary p ~env ~seed =
  let rng = Eden_base.Rng.create seed in
  match Interp.run p ~env ~now ~rng with
  | Ok _ -> None
  | Error (f, _) -> Some (Interp.fault_to_string f)

(* A loop over a min_length array: the guard survives widening and every
   access is proved; the hardened program must run identically. *)
let scan_action =
  let open Eden_lang.Dsl in
  action "scan"
    (let_mut "i" (int 0) @@ fun i ->
     let_mut "acc" (int 0) @@ fun acc ->
     while_ (i < glob_arr_len "Table")
       (assign "acc" (acc + glob_arr "Table" i) ^^ assign "i" (i + int 1))
     ^^ set_pkt "Priority" (acc % int 8))

let scan_schema =
  Schema.with_standard_packet
    ~global_arrays:[ Schema.array ~min_length:16 "Table" ] ()

let test_bounds_loop_proved () =
  let p = compile_exn scan_schema scan_action in
  let bounds, hardened = Bounds.of_program p in
  check_int "one array access" 1 bounds.Bounds.total;
  check_int "proved through the loop" 1 bounds.Bounds.proved;
  check_bool "hardened uses an unchecked load" true
    (Array.exists (function Op.Gaload_unsafe _ -> true | _ -> false)
       hardened.P.code);
  (match Verifier.analyse ~strict:true hardened with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "hardened rejected: %s" (Verifier.error_to_string e));
  (* Differential: checked and hardened agree on result and state. *)
  let mk p =
    Interp.make_env p
      ~scalars:(Array.make (Array.length p.P.scalar_slots) 0L)
      ~arrays:
        (Array.map
           (fun (a : P.array_slot) ->
             match a.P.a_name with
             | "Table" -> Array.init 16 (fun i -> Int64.of_int (i * 3))
             | _ -> [||])
           p.P.array_slots)
  in
  let env_c = mk p and env_h = mk hardened in
  let r_c = run_summary p ~env:env_c ~seed:7L in
  let r_h = run_summary hardened ~env:env_h ~seed:7L in
  check_bool "same outcome" true (r_c = r_h);
  check_bool "same final scalars" true (env_c.Interp.scalars = env_h.Interp.scalars)

let test_harden_wcmp_offset_route () =
  (* wcmp's guard is [i + 1 >= len]: the offset-provenance route.  Three
     of the four accesses prove; the fallback load on the exhausted
     branch is only dynamically safe and must stay checked. *)
  let bounds, hardened = Bounds.of_program (Eden_functions.Wcmp.program ()) in
  check_int "total" 4 bounds.Bounds.total;
  check_int "proved" 3 bounds.Bounds.proved;
  match Verifier.analyse ~strict:true hardened with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "hardened rejected: %s" (Verifier.error_to_string e)

let test_harden_pias_plain_route () =
  let bounds, hardened = Bounds.of_program (Eden_functions.Pias.program ()) in
  check_int "total" 1 bounds.Bounds.total;
  check_int "proved" 1 bounds.Bounds.proved;
  match Verifier.analyse ~strict:true hardened with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "hardened rejected: %s" (Verifier.error_to_string e)

let test_differential_wcmp_random () =
  let p = Eden_functions.Wcmp.program () in
  let _, hardened = Bounds.of_program p in
  let st = Random.State.make [| 42 |] in
  for trial = 1 to 100 do
    (* Interleaved (path, weight) pairs; weights deliberately sometimes
       sum below the rand bound so the checked fallback access can fault
       — the hardened program must fault identically. *)
    let paths =
      Array.init 4 (fun i ->
          if i mod 2 = 0 then Int64.of_int (i / 2)
          else Int64.of_int (1 + Random.State.int st 700))
    in
    let mk p =
      Interp.make_env p
        ~scalars:(Array.make (Array.length p.P.scalar_slots) 0L)
        ~arrays:(Array.map (fun _ -> Array.copy paths) p.P.array_slots)
    in
    let env_c = mk p and env_h = mk hardened in
    let seed = Int64.of_int trial in
    let r_c = run_summary p ~env:env_c ~seed in
    let r_h = run_summary hardened ~env:env_h ~seed in
    if r_c <> r_h then
      Alcotest.failf "trial %d: checked %s vs hardened %s" trial
        (match r_c with None -> "ok" | Some f -> f)
        (match r_h with None -> "ok" | Some f -> f);
    check_bool "same scalars" true (env_c.Interp.scalars = env_h.Interp.scalars)
  done

let test_unsafe_bytecode_rejected () =
  (* Hand-crafted unchecked access with no provable bound: the verifier
     re-discharges the proof obligation and must refuse to install. *)
  let p =
    P.make ~name:"evil"
      ~code:[| Op.Push 5L; Op.Gaload_unsafe 0; Op.Pop; Op.Halt |]
      ~array_slots:
        [|
          { P.a_name = "T"; a_entity = P.Global; a_access = P.Read_only;
            a_min_len = 0 };
        |]
      ()
  in
  match Verifier.verify p with
  | Error (Verifier.Unproved_unsafe { pc = 1; slot = 0 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Verifier.error_to_string e)
  | Ok () -> Alcotest.fail "unsafe access verified without a proof"

let test_unsafe_bytecode_accepted_with_min_len () =
  let p =
    P.make ~name:"fine"
      ~code:[| Op.Push 5L; Op.Gaload_unsafe 0; Op.Pop; Op.Halt |]
      ~array_slots:
        [|
          { P.a_name = "T"; a_entity = P.Global; a_access = P.Read_only;
            a_min_len = 6 };
        |]
      ()
  in
  match Verifier.verify p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected: %s" (Verifier.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Cost bounds and admission *)

let test_cost_acyclic_exact () =
  let action =
    let open Eden_lang.Dsl in
    action "straight" (set_pkt "Priority" (pkt "Size" % int 8))
  in
  let p = compile_exn (Schema.with_standard_packet ()) action in
  let c = Cost.of_program p in
  check_bool "acyclic WCET is exact" true (c.Cost.wcet_steps <> None);
  check_bool "charged below the step limit" true
    (c.Cost.admission_steps < c.Cost.step_limit);
  List.iter
    (fun (e : Cost.estimate) ->
      check_bool (e.Cost.placement ^ " fits") true e.Cost.fits)
    c.Cost.estimates

let test_cost_loop_uses_step_limit () =
  let p = compile_exn scan_schema scan_action in
  let c = Cost.of_program p in
  check_bool "looping WCET unknown" true (c.Cost.wcet_steps = None);
  check_int "charged the step limit" c.Cost.step_limit c.Cost.admission_steps

let test_over_budget_install_rejected () =
  let e = Enclave.create ~host:1 () in
  Enclave.set_budget_ns e 10.0;
  let p = Eden_functions.Pias.program () in
  (match
     Enclave.install_action_full e
       { Enclave.i_name = "pias"; i_impl = Enclave.Interpreted p; i_msg_sources = [] }
   with
  | Error (Enclave.Over_budget { est_ns; budget_ns; _ }) ->
    check_bool "estimate exceeds budget" true (est_ns > budget_ns)
  | Error e -> Alcotest.failf "wrong error: %s" (Enclave.install_error_to_string e)
  | Ok () -> Alcotest.fail "over-budget program admitted");
  (* The static cost report predicts the same decision. *)
  let c = Cost.of_program p in
  List.iter
    (fun (est : Cost.estimate) ->
      check_bool (est.Cost.placement ^ " admitted at default budget") true
        est.Cost.fits)
    c.Cost.estimates

(* ------------------------------------------------------------------ *)
(* Optimizer *)

let test_optimizer_shrinks_and_preserves () =
  let wasteful =
    let open Eden_lang.Dsl in
    action "wasteful"
      (if_ tru
         (set_pkt "Priority" ((pkt "Size" + int 0) * int 1 % (int 4 + int 4)))
         (set_pkt "Priority" (int 99)))
  in
  let optimized, stats = Optimize.run wasteful in
  check_bool "fewer nodes" true
    (stats.Optimize.nodes_after < stats.Optimize.nodes_before);
  let schema = Schema.with_standard_packet () in
  let run action =
    let p = compile_exn schema action in
    let scalars = Array.make (Array.length p.P.scalar_slots) 0L in
    Array.iteri
      (fun i (s : P.scalar_slot) -> if s.P.s_name = "Size" then scalars.(i) <- 1058L)
      p.P.scalar_slots;
    let env = Interp.make_env p ~scalars ~arrays:[||] in
    match Interp.run p ~env ~now ~rng:(Eden_base.Rng.create 1L) with
    | Ok _ -> env.Interp.scalars
    | Error (f, _) -> Alcotest.failf "fault: %s" (Interp.fault_to_string f)
  in
  check_bool "same final state" true (run wasteful = run optimized)

let test_optimizer_keeps_effects () =
  (* A discarded-but-effectful sequence head must survive. *)
  let open Eden_lang.Dsl in
  let a =
    action "effectful" (set_msg "Seen" (msg "Seen" + int 1) ^^ unit)
  in
  let optimized, _ = Optimize.run a in
  let fp = Effects.of_action optimized in
  check_bool "write survives" true
    (List.mem (Ast.Message, "Seen", `Write) fp.Effects.fields)

(* ------------------------------------------------------------------ *)
(* Analyze.run over every built-in *)

let test_analyze_all_builtins () =
  List.iter
    (fun (name, action, schema) ->
      match Analyze.run schema action with
      | Error e ->
        Alcotest.failf "%s: %s" name (Analyze.error_to_string e)
      | Ok (report, hardened) ->
        check_bool (name ^ ": bounds accounted") true
          (report.Report.r_bounds.Bounds.proved
           <= report.Report.r_bounds.Bounds.total);
        check_bool (name ^ ": fits both placements") true
          (List.for_all
             (fun (e : Cost.estimate) -> e.Cost.fits)
             report.Report.r_cost.Cost.estimates);
        check_bool (name ^ ": hardened re-verifies") true
          (Verifier.verify ~strict:true hardened = Ok ()))
    [
      ("wcmp", Eden_functions.Wcmp.action, Eden_functions.Wcmp.schema);
      ("message-wcmp", Eden_functions.Wcmp.message_action, Eden_functions.Wcmp.schema);
      ("pias", Eden_functions.Pias.action, Eden_functions.Pias.schema);
      ("sff", Eden_functions.Sff.action, Eden_functions.Sff.schema);
      ("pulsar", Eden_functions.Pulsar.action, Eden_functions.Pulsar.schema);
      ( "port-knocking",
        Eden_functions.Port_knocking.action,
        Eden_functions.Port_knocking.schema );
      ( "replica-select",
        Eden_functions.Replica_select.action,
        Eden_functions.Replica_select.schema );
    ]

(* ------------------------------------------------------------------ *)
(* Verifier: unreachable-code analysis *)

let test_unreachable_reported () =
  let p =
    P.make ~name:"dead"
      ~code:[| Op.Push 1L; Op.Jmp 3; Op.Push 2L; Op.Pop; Op.Halt |]
      ()
  in
  (match Verifier.analyse p with
  | Ok an -> Alcotest.(check (list int)) "pc 2 is dead" [ 2 ]
               an.Verifier.an_unreachable
  | Error e -> Alcotest.failf "analyse: %s" (Verifier.error_to_string e));
  match Verifier.analyse ~strict:true p with
  | Error (Verifier.Unreachable_code { pc = 2 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Verifier.error_to_string e)
  | Ok _ -> Alcotest.fail "strict mode accepted dead code"

(* ------------------------------------------------------------------ *)
(* Typechecker: recursive functions return int by convention *)

let test_recursive_returns_int () =
  let open Eden_lang.Dsl in
  let f = fn "f" [ "i" ] (if_ (var "i" >= int 10) (int 0) (call "f" [ var "i" + int 1 ])) in
  let a = action ~funs:[ f ] "ok" (set_pkt "Priority" (call "f" [ int 0 ])) in
  match Typecheck.check (Schema.with_standard_packet ()) a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected: %s" e.Typecheck.message

let test_recursive_bool_branch_rejected () =
  (* One branch returns bool while the recursive occurrence is assumed
     int: the convention makes this a type error, not a loop. *)
  let open Eden_lang.Dsl in
  let f = fn "f" [ "i" ] (if_ (var "i" >= int 10) tru (call "f" [ var "i" + int 1 ])) in
  let a = action ~funs:[ f ] "bad" (set_pkt "Priority" (call "f" [ int 0 ])) in
  check_bool "rejected" true
    (Typecheck.check (Schema.with_standard_packet ()) a |> Result.is_error)

let test_recursive_result_not_a_condition () =
  let open Eden_lang.Dsl in
  let f = fn "f" [ "i" ] (if_ (var "i" >= int 10) (int 1) (call "f" [ var "i" + int 1 ])) in
  let a =
    action ~funs:[ f ] "bad"
      (when_ (call "f" [ int 0 ]) (set_pkt "Priority" (int 1)))
  in
  check_bool "int result rejected as condition" true
    (Typecheck.check (Schema.with_standard_packet ()) a |> Result.is_error)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "eden_analysis"
    [
      ( "effects",
        [
          Alcotest.test_case "wcmp footprint" `Quick test_effects_wcmp;
          Alcotest.test_case "pias footprint" `Quick test_effects_pias;
          Alcotest.test_case "sff parallel" `Quick test_effects_sff;
          Alcotest.test_case "port knocking serial" `Quick
            test_effects_port_knocking_serial;
          Alcotest.test_case "agrees with enclave" `Quick
            test_effects_agree_with_enclave;
          Alcotest.test_case "rejects read-only write" `Quick
            test_reject_readonly_write;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "loop proof survives widening" `Quick
            test_bounds_loop_proved;
          Alcotest.test_case "wcmp offset route" `Quick test_harden_wcmp_offset_route;
          Alcotest.test_case "pias plain route" `Quick test_harden_pias_plain_route;
          Alcotest.test_case "differential wcmp random" `Quick
            test_differential_wcmp_random;
          Alcotest.test_case "unsafe bytecode rejected" `Quick
            test_unsafe_bytecode_rejected;
          Alcotest.test_case "unsafe ok with min_len" `Quick
            test_unsafe_bytecode_accepted_with_min_len;
        ] );
      ( "cost",
        [
          Alcotest.test_case "acyclic exact" `Quick test_cost_acyclic_exact;
          Alcotest.test_case "loop uses step limit" `Quick
            test_cost_loop_uses_step_limit;
          Alcotest.test_case "over budget rejected" `Quick
            test_over_budget_install_rejected;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "shrinks and preserves" `Quick
            test_optimizer_shrinks_and_preserves;
          Alcotest.test_case "keeps effects" `Quick test_optimizer_keeps_effects;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "all built-ins" `Quick test_analyze_all_builtins ] );
      ( "verifier",
        [ Alcotest.test_case "unreachable" `Quick test_unreachable_reported ] );
      ( "typecheck",
        [
          Alcotest.test_case "recursion returns int" `Quick
            test_recursive_returns_int;
          Alcotest.test_case "bool branch rejected" `Quick
            test_recursive_bool_branch_rejected;
          Alcotest.test_case "int result not a condition" `Quick
            test_recursive_result_not_a_condition;
        ] );
    ]
