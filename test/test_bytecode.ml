(* Tests for the bytecode VM: assembler, verifier, interpreter. *)

open Eden_bytecode
module Op = Opcode

let now = Eden_base.Time.us 100
let rng () = Eden_base.Rng.create 1L

let run_prog ?(scalars = [||]) ?(arrays = [||]) p =
  let env = Interp.make_env p ~scalars ~arrays in
  (Interp.run p ~env ~now ~rng:(rng ()), env)

let simple ?(stack_limit = 16) ?(heap_limit = 64) ?(step_limit = 10_000)
    ?(scalar_slots = [||]) ?(array_slots = [||]) code =
  Program.make ~name:"test" ~code ~scalar_slots ~array_slots ~stack_limit ~heap_limit
    ~step_limit ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ro_scalar name local =
  { Program.s_name = name; s_entity = Program.Packet; s_access = Program.Read_only;
    s_local = local }

let rw_scalar name local =
  { Program.s_name = name; s_entity = Program.Packet; s_access = Program.Read_write;
    s_local = local }

let ro_array ?(min_len = 0) name =
  { Program.a_name = name; a_entity = Program.Global; a_access = Program.Read_only;
    a_min_len = min_len }

let rw_array ?(min_len = 0) name =
  { Program.a_name = name; a_entity = Program.Global; a_access = Program.Read_write;
    a_min_len = min_len }

(* ------------------------------------------------------------------ *)
(* Interpreter basics *)

let expect_scalar ?scalars ?arrays p slot expected =
  let scalars =
    match scalars with
    | Some s -> s
    | None -> Array.make (Array.length p.Program.scalar_slots) 0L
  in
  let arrays =
    match arrays with
    | Some a -> a
    | None -> Array.make (Array.length p.Program.array_slots) [||]
  in
  let result, env = run_prog ~scalars ~arrays p in
  (match result with
  | Ok _ -> ()
  | Error (f, _) -> Alcotest.failf "unexpected fault: %s" (Interp.fault_to_string f));
  Alcotest.(check int64) "scalar result" expected env.Interp.scalars.(slot)

let arith_prog result_expr =
  (* Stores the expression into a writable scalar slot 0 (local 0). *)
  simple ~scalar_slots:[| rw_scalar "Out" 0 |] (Array.append result_expr [| Op.Store 0 |])

let test_arith () =
  expect_scalar (arith_prog [| Op.Push 20L; Op.Push 22L; Op.Add |]) 0 42L;
  expect_scalar (arith_prog [| Op.Push 50L; Op.Push 8L; Op.Sub |]) 0 42L;
  expect_scalar (arith_prog [| Op.Push 6L; Op.Push 7L; Op.Mul |]) 0 42L;
  expect_scalar (arith_prog [| Op.Push 85L; Op.Push 2L; Op.Div |]) 0 42L;
  expect_scalar (arith_prog [| Op.Push 142L; Op.Push 100L; Op.Rem |]) 0 42L;
  expect_scalar (arith_prog [| Op.Push (-42L); Op.Neg |]) 0 42L

let test_bitwise () =
  expect_scalar (arith_prog [| Op.Push 0xF0L; Op.Push 0x0FL; Op.Bor |]) 0 0xFFL;
  expect_scalar (arith_prog [| Op.Push 0xFFL; Op.Push 0x0FL; Op.Band |]) 0 0x0FL;
  expect_scalar (arith_prog [| Op.Push 0xFFL; Op.Push 0x0FL; Op.Bxor |]) 0 0xF0L;
  expect_scalar (arith_prog [| Op.Push 1L; Op.Push 4L; Op.Shl |]) 0 16L;
  expect_scalar (arith_prog [| Op.Push 16L; Op.Push 4L; Op.Shr |]) 0 1L

let test_comparisons () =
  expect_scalar (arith_prog [| Op.Push 1L; Op.Push 2L; Op.Lt |]) 0 1L;
  expect_scalar (arith_prog [| Op.Push 2L; Op.Push 2L; Op.Le |]) 0 1L;
  expect_scalar (arith_prog [| Op.Push 2L; Op.Push 2L; Op.Eq |]) 0 1L;
  expect_scalar (arith_prog [| Op.Push 3L; Op.Push 2L; Op.Gt |]) 0 1L;
  expect_scalar (arith_prog [| Op.Push 3L; Op.Push 2L; Op.Ge |]) 0 1L;
  expect_scalar (arith_prog [| Op.Push 3L; Op.Push 2L; Op.Ne |]) 0 1L;
  expect_scalar (arith_prog [| Op.Push 3L; Op.Push 2L; Op.Lt |]) 0 0L;
  expect_scalar (arith_prog [| Op.Push 0L; Op.Not |]) 0 1L;
  expect_scalar (arith_prog [| Op.Push 5L; Op.Not |]) 0 0L

let test_stack_ops () =
  expect_scalar (arith_prog [| Op.Push 21L; Op.Dup; Op.Add |]) 0 42L;
  expect_scalar (arith_prog [| Op.Push 2L; Op.Push 44L; Op.Swap; Op.Sub |]) 0 42L;
  expect_scalar (arith_prog [| Op.Push 42L; Op.Push 1L; Op.Pop |]) 0 42L

let test_branching () =
  (* if 1 < 2 then 42 else 7 *)
  let code =
    [|
      Op.Push 1L; Op.Push 2L; Op.Lt; Op.Jz 6; Op.Push 42L; Op.Jmp 7; Op.Push 7L;
      Op.Store 0;
    |]
  in
  expect_scalar (simple ~scalar_slots:[| rw_scalar "Out" 0 |] code) 0 42L

let test_loop_sum () =
  (* local1 = 0; for local2 = 1..10: local1 += local2.  Sum = 55. *)
  let code =
    [|
      (* 0 *) Op.Push 0L; Op.Store 1; Op.Push 1L; Op.Store 2;
      (* 4: loop head *) Op.Load 2; Op.Push 10L; Op.Le; Op.Jz 15;
      (* 8 *) Op.Load 1; Op.Load 2; Op.Add; Op.Store 1;
      (* 12 *) Op.Load 2; Op.Push 1L; Op.Add;
      (* 15 is wrong target; recompute below *)
      Op.Store 2; Op.Jmp 4;
      (* 17 *) Op.Load 1; Op.Store 0;
    |]
  in
  (* Fix the exit target: Jz should jump to index 17. *)
  code.(7) <- Op.Jz 17;
  expect_scalar (simple ~scalar_slots:[| rw_scalar "Out" 0 |] code) 0 55L

let test_scalar_env_roundtrip () =
  (* Out(local1) := In(local0) * 2 *)
  let p =
    simple
      ~scalar_slots:[| ro_scalar "In" 0; rw_scalar "Out" 1 |]
      [| Op.Load 0; Op.Push 2L; Op.Mul; Op.Store 1 |]
  in
  let result, env = run_prog ~scalars:[| 21L; 0L |] p in
  check_bool "ok" true (Result.is_ok result);
  Alcotest.(check int64) "doubled" 42L env.Interp.scalars.(1);
  Alcotest.(check int64) "input preserved" 21L env.Interp.scalars.(0)

let test_readonly_scalar_not_written_back () =
  (* Writing the local backing a read-only slot must not publish. *)
  let p =
    simple ~scalar_slots:[| ro_scalar "In" 0 |] [| Op.Push 99L; Op.Store 0 |]
  in
  let result, env = run_prog ~scalars:[| 5L |] p in
  check_bool "ok" true (Result.is_ok result);
  Alcotest.(check int64) "unchanged" 5L env.Interp.scalars.(0)

let test_env_arrays () =
  (* arr[2] := arr[0] + arr[1] *)
  let p =
    simple ~array_slots:[| rw_array "A" |]
      [| Op.Push 2L; Op.Push 0L; Op.Gaload 0; Op.Push 1L; Op.Gaload 0; Op.Add;
         Op.Gastore 0 |]
  in
  let arrays = [| [| 40L; 2L; 0L |] |] in
  let result, _ = run_prog ~arrays p in
  check_bool "ok" true (Result.is_ok result);
  Alcotest.(check int64) "sum stored" 42L arrays.(0).(2)

let test_galen () =
  let p =
    simple
      ~scalar_slots:[| rw_scalar "Out" 0 |]
      ~array_slots:[| ro_array "A" |]
      [| Op.Galen 0; Op.Store 0 |]
  in
  expect_scalar ~scalars:[| 0L |] ~arrays:[| Array.make 7 0L |] p 0 7L

let test_heap_arrays () =
  (* r = newarr 3; r[1] := 42; out := r[1] + len(r) *)
  let code =
    [|
      Op.Push 3L; Op.Newarr; Op.Store 1;
      Op.Load 1; Op.Push 1L; Op.Push 42L; Op.Astore;
      Op.Load 1; Op.Push 1L; Op.Aload;
      Op.Load 1; Op.Alen; Op.Add; Op.Store 0;
    |]
  in
  expect_scalar (simple ~scalar_slots:[| rw_scalar "Out" 0 |] code) 0 45L

let test_clock_intrinsic () =
  let p = simple ~scalar_slots:[| rw_scalar "Out" 0 |] [| Op.Clock; Op.Store 0 |] in
  expect_scalar p 0 (Eden_base.Time.to_ns now)

let test_rand_intrinsic () =
  let p =
    simple ~scalar_slots:[| rw_scalar "Out" 0 |] [| Op.Push 10L; Op.Rand; Op.Store 0 |]
  in
  let result, env = run_prog ~scalars:[| 0L |] p in
  check_bool "ok" true (Result.is_ok result);
  let v = env.Interp.scalars.(0) in
  check_bool "in range" true (v >= 0L && v < 10L)

let test_hashmix_deterministic () =
  let p =
    simple ~scalar_slots:[| rw_scalar "Out" 0 |]
      [| Op.Push 123L; Op.Push 456L; Op.Hashmix; Op.Store 0 |]
  in
  let _, env1 = run_prog ~scalars:[| 0L |] p in
  let _, env2 = run_prog ~scalars:[| 0L |] p in
  Alcotest.(check int64) "deterministic" env1.Interp.scalars.(0) env2.Interp.scalars.(0);
  check_bool "mixed" true (env1.Interp.scalars.(0) <> 123L)

(* ------------------------------------------------------------------ *)
(* Faults *)

let expect_fault p ~scalars ~arrays pred name =
  let result, _ = run_prog ~scalars ~arrays p in
  match result with
  | Ok _ -> Alcotest.failf "%s: expected fault" name
  | Error (f, _) -> check_bool name true (pred f)

let test_division_by_zero () =
  let p = simple [| Op.Push 1L; Op.Push 0L; Op.Div; Op.Pop |] in
  expect_fault p ~scalars:[||] ~arrays:[||]
    (function Interp.Division_by_zero _ -> true | _ -> false)
    "div by zero";
  let p = simple [| Op.Push 1L; Op.Push 0L; Op.Rem; Op.Pop |] in
  expect_fault p ~scalars:[||] ~arrays:[||]
    (function Interp.Division_by_zero _ -> true | _ -> false)
    "rem by zero"

let test_step_limit () =
  (* Infinite loop. *)
  let p = simple ~step_limit:100 [| Op.Jmp 0 |] in
  expect_fault p ~scalars:[||] ~arrays:[||]
    (function Interp.Step_limit_exceeded { limit } -> limit = 100 | _ -> false)
    "step limit"

let test_array_bounds_fault () =
  let p = simple ~array_slots:[| ro_array "A" |] [| Op.Push 5L; Op.Gaload 0; Op.Pop |] in
  expect_fault p ~scalars:[||] ~arrays:[| [| 1L; 2L |] |]
    (function Interp.Array_bounds { index = 5; length = 2; _ } -> true | _ -> false)
    "bounds"

let test_negative_index_fault () =
  let p = simple ~array_slots:[| ro_array "A" |] [| Op.Push (-1L); Op.Gaload 0; Op.Pop |] in
  expect_fault p ~scalars:[||] ~arrays:[| [| 1L |] |]
    (function Interp.Array_bounds _ -> true | _ -> false)
    "negative index"

let test_heap_exhausted () =
  let p = simple ~heap_limit:10 [| Op.Push 100L; Op.Newarr; Op.Pop |] in
  expect_fault p ~scalars:[||] ~arrays:[||]
    (function Interp.Heap_exhausted { requested = 100; limit = 10; _ } -> true | _ -> false)
    "heap exhausted"

let test_bad_rand_bound () =
  let p = simple [| Op.Push 0L; Op.Rand; Op.Pop |] in
  expect_fault p ~scalars:[||] ~arrays:[||]
    (function Interp.Bad_random_bound _ -> true | _ -> false)
    "rand bound"

let test_invalid_heap_ref () =
  let p = simple [| Op.Push 3L; Op.Push 0L; Op.Aload; Op.Pop |] in
  expect_fault p ~scalars:[||] ~arrays:[||]
    (function Interp.Invalid_reference _ -> true | _ -> false)
    "invalid ref"

let test_fault_keeps_scalars_unpublished () =
  (* A program that writes its output local and then faults: the write
     must not reach the environment. *)
  let p =
    simple ~scalar_slots:[| rw_scalar "Out" 0 |]
      [| Op.Push 99L; Op.Store 0; Op.Push 1L; Op.Push 0L; Op.Div; Op.Pop |]
  in
  let scalars = [| 7L |] in
  let result, env = run_prog ~scalars p in
  check_bool "faulted" true (Result.is_error result);
  Alcotest.(check int64) "not published" 7L env.Interp.scalars.(0)

let test_stats_reported () =
  let p = simple [| Op.Push 1L; Op.Push 2L; Op.Add; Op.Pop |] in
  let result, _ = run_prog p in
  match result with
  | Ok stats ->
    check_int "steps" 4 stats.Interp.steps;
    check_int "max stack" 2 stats.Interp.max_stack;
    check_int "no heap" 0 stats.Interp.heap_cells
  | Error _ -> Alcotest.fail "unexpected fault"

(* ------------------------------------------------------------------ *)
(* Verifier *)

let expect_verify_error code pred name =
  match Verifier.verify (simple code) with
  | Ok () -> Alcotest.failf "%s: expected verifier rejection" name
  | Error e -> check_bool name true (pred e)

let test_verify_ok () =
  let p = simple [| Op.Push 1L; Op.Push 2L; Op.Add; Op.Pop |] in
  check_bool "accepts" true (Result.is_ok (Verifier.verify p))

let test_verify_empty () =
  expect_verify_error [||] (function Verifier.Empty_code -> true | _ -> false) "empty"

let test_verify_bad_jump () =
  expect_verify_error
    [| Op.Jmp 99 |]
    (function Verifier.Bad_jump { target = 99; _ } -> true | _ -> false)
    "bad jump"

let test_verify_underflow () =
  expect_verify_error [| Op.Add |]
    (function Verifier.Stack_underflow _ -> true | _ -> false)
    "underflow"

let test_verify_overflow () =
  let code = Array.make 20 (Op.Push 1L) in
  match Verifier.verify (simple ~stack_limit:8 code) with
  | Ok () -> Alcotest.fail "expected overflow"
  | Error e ->
    check_bool "overflow" true
      (match e with Verifier.Stack_overflow { limit = 8; _ } -> true | _ -> false)

let test_verify_inconsistent_depth () =
  (* Two paths reach the same pc with different depths. *)
  let code =
    [| Op.Push 1L; Op.Jz 3; Op.Push 7L; Op.Pop; Op.Halt |]
    (* path A: pc3 with depth 1 (after Push 7); path B: jump straight to
       pc3 with depth 0. *)
  in
  expect_verify_error code
    (function Verifier.Inconsistent_stack _ | Verifier.Stack_underflow _ -> true | _ -> false)
    "inconsistent"

let test_verify_bad_local () =
  let p =
    Program.make ~name:"t" ~code:[| Op.Load 5; Op.Pop |] ~n_locals:2 ~stack_limit:8
      ~heap_limit:8 ~step_limit:100 ()
  in
  match Verifier.verify p with
  | Ok () -> Alcotest.fail "expected bad local"
  | Error e ->
    check_bool "bad local" true
      (match e with Verifier.Bad_local { index = 5; _ } -> true | _ -> false)

let test_verify_bad_slot () =
  expect_verify_error
    [| Op.Push 0L; Op.Gaload 3; Op.Pop |]
    (function Verifier.Bad_array_slot { slot = 3; _ } -> true | _ -> false)
    "bad slot"

let test_verify_readonly_array_write () =
  let code = [| Op.Push 0L; Op.Push 1L; Op.Gastore 0 |] in
  match Verifier.verify (simple ~array_slots:[| ro_array "A" |] code) with
  | Ok () -> Alcotest.fail "expected readonly rejection"
  | Error e ->
    check_bool "readonly" true
      (match e with Verifier.Readonly_write { slot = 0; _ } -> true | _ -> false)

let test_verify_max_depth () =
  let p = simple [| Op.Push 1L; Op.Push 2L; Op.Push 3L; Op.Add; Op.Add; Op.Pop |] in
  match Verifier.max_stack_depth p with
  | Ok d -> check_int "depth" 3 d
  | Error _ -> Alcotest.fail "verify failed"

(* ------------------------------------------------------------------ *)
(* Assembler *)

let test_asm_labels () =
  let code =
    Asm.assemble_exn
      [
        Asm.I (Op.Push 1L);
        Asm.Jz_l "else";
        Asm.I (Op.Push 42L);
        Asm.Jmp_l "end";
        Asm.Label "else";
        Asm.I (Op.Push 7L);
        Asm.Label "end";
        Asm.I (Op.Store 0);
      ]
  in
  check_int "length" 6 (Array.length code);
  check_bool "jz resolved" true (code.(1) = Op.Jz 4);
  check_bool "jmp resolved" true (code.(3) = Op.Jmp 5)

let test_asm_undefined_label () =
  match Asm.assemble [ Asm.Jmp_l "nowhere" ] with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg -> check_bool "mentions label" true (String.length msg > 0)

let test_asm_duplicate_label () =
  match Asm.assemble [ Asm.Label "a"; Asm.Label "a" ] with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Property: random linear (jump-free) programs never crash the VM. *)

let prop_vm_total =
  let gen_op =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map (fun v -> Op.Push (Int64.of_int v)) QCheck.Gen.small_int;
        QCheck.Gen.return Op.Add;
        QCheck.Gen.return Op.Sub;
        QCheck.Gen.return Op.Mul;
        QCheck.Gen.return Op.Dup;
        QCheck.Gen.return Op.Pop;
        QCheck.Gen.return Op.Swap;
        QCheck.Gen.return Op.Not;
      ]
  in
  let gen = QCheck.Gen.array_size (QCheck.Gen.int_range 1 40) gen_op in
  QCheck.Test.make ~name:"vm is total on arbitrary linear programs" ~count:500
    (QCheck.make gen) (fun code ->
      let p = simple ~stack_limit:8 ~step_limit:1000 code in
      (* Run regardless of verification: the VM must fault, not crash. *)
      let env = Interp.make_env p ~scalars:[||] ~arrays:[||] in
      match Interp.run p ~env ~now ~rng:(rng ()) with Ok _ | Error _ -> true)

let prop_verified_linear_runs_clean =
  let gen_op =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map (fun v -> Op.Push (Int64.of_int (v + 1))) QCheck.Gen.small_int;
        QCheck.Gen.return Op.Add;
        QCheck.Gen.return Op.Mul;
        QCheck.Gen.return Op.Dup;
        QCheck.Gen.return Op.Pop;
      ]
  in
  let gen = QCheck.Gen.array_size (QCheck.Gen.int_range 1 30) gen_op in
  QCheck.Test.make
    ~name:"verified jump-free programs without div/arrays never fault" ~count:500
    (QCheck.make gen) (fun code ->
      let p = simple ~stack_limit:32 ~step_limit:1000 code in
      match Verifier.verify p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> (
        let env = Interp.make_env p ~scalars:[||] ~arrays:[||] in
        match Interp.run p ~env ~now ~rng:(rng ()) with
        | Ok _ -> true
        | Error _ -> false))

let qcheck t = QCheck_alcotest.to_alcotest t

let test_scratch_reuse () =
  (* Same results with and without scratch, and no state leak between
     runs through uninitialized locals. *)
  let p =
    simple ~scalar_slots:[| rw_scalar "Out" 0 |]
      [| Op.Load 1; Op.Push 1L; Op.Add; Op.Store 1; Op.Load 1; Op.Store 0 |]
  in
  let scratch = Interp.make_scratch p in
  let run_with sc =
    let env = Interp.make_env p ~scalars:[| 0L |] ~arrays:[||] in
    (match Interp.run ?scratch:sc p ~env ~now ~rng:(rng ()) with
    | Ok _ -> ()
    | Error (f, _) -> Alcotest.failf "fault: %s" (Interp.fault_to_string f));
    env.Interp.scalars.(0)
  in
  (* local 1 starts at 0 each run: result is always 1 even when the
     previous run left 1 in the same buffer. *)
  Alcotest.(check int64) "fresh" 1L (run_with None);
  Alcotest.(check int64) "scratch run 1" 1L (run_with (Some scratch));
  Alcotest.(check int64) "scratch run 2 (no leak)" 1L (run_with (Some scratch))

let test_scratch_too_small_rejected () =
  let small = simple ~stack_limit:4 [| Op.Push 1L; Op.Pop |] in
  let big = simple ~stack_limit:32 [| Op.Push 1L; Op.Pop |] in
  let sc = Interp.make_scratch small in
  let env = Interp.make_env big ~scalars:[||] ~arrays:[||] in
  Alcotest.check_raises "rejected"
    (Invalid_argument "Interp.run: scratch buffers too small for this program")
    (fun () -> ignore (Interp.run ~scratch:sc big ~env ~now ~rng:(rng ())))


let bytecode_suites =
    [
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "stack ops" `Quick test_stack_ops;
          Alcotest.test_case "branching" `Quick test_branching;
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "scalar env roundtrip" `Quick test_scalar_env_roundtrip;
          Alcotest.test_case "read-only scalars stay put" `Quick
            test_readonly_scalar_not_written_back;
          Alcotest.test_case "env arrays" `Quick test_env_arrays;
          Alcotest.test_case "galen" `Quick test_galen;
          Alcotest.test_case "heap arrays" `Quick test_heap_arrays;
          Alcotest.test_case "clock" `Quick test_clock_intrinsic;
          Alcotest.test_case "rand" `Quick test_rand_intrinsic;
          Alcotest.test_case "hashmix" `Quick test_hashmix_deterministic;
          Alcotest.test_case "stats" `Quick test_stats_reported;
          Alcotest.test_case "scratch reuse" `Quick test_scratch_reuse;
          Alcotest.test_case "scratch too small" `Quick test_scratch_too_small_rejected;
        ] );
      ( "faults",
        [
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "array bounds" `Quick test_array_bounds_fault;
          Alcotest.test_case "negative index" `Quick test_negative_index_fault;
          Alcotest.test_case "heap exhausted" `Quick test_heap_exhausted;
          Alcotest.test_case "bad rand bound" `Quick test_bad_rand_bound;
          Alcotest.test_case "invalid heap ref" `Quick test_invalid_heap_ref;
          Alcotest.test_case "fault isolation" `Quick test_fault_keeps_scalars_unpublished;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts good code" `Quick test_verify_ok;
          Alcotest.test_case "empty" `Quick test_verify_empty;
          Alcotest.test_case "bad jump" `Quick test_verify_bad_jump;
          Alcotest.test_case "underflow" `Quick test_verify_underflow;
          Alcotest.test_case "overflow" `Quick test_verify_overflow;
          Alcotest.test_case "inconsistent depth" `Quick test_verify_inconsistent_depth;
          Alcotest.test_case "bad local" `Quick test_verify_bad_local;
          Alcotest.test_case "bad slot" `Quick test_verify_bad_slot;
          Alcotest.test_case "readonly array write" `Quick test_verify_readonly_array_write;
          Alcotest.test_case "max depth" `Quick test_verify_max_depth;
        ] );
      ( "asm",
        [
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
        ] );
      ( "properties", [ qcheck prop_vm_total; qcheck prop_verified_linear_runs_clean ] );
    ]

(* ------------------------------------------------------------------ *)
(* Codec: binary serialization round-trips and rejects corruption. *)

let sample_program () =
  Program.make ~name:"sample"
    ~code:
      [|
        Op.Push 10L; Op.Load 0; Op.Add; Op.Store 1; Op.Push 0L; Op.Gaload 0;
        Op.Jz 8; Op.Clock; Op.Halt;
      |]
    ~scalar_slots:[| ro_scalar "In" 0; rw_scalar "Out" 1 |]
    ~array_slots:[| ro_array "Tbl" |]
    ~stack_limit:16 ~heap_limit:64 ~step_limit:500 ()

let test_codec_roundtrip () =
  let p = sample_program () in
  let encoded = Codec.encode p in
  match Codec.decode encoded with
  | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e)
  | Ok p' ->
    check_bool "name" true (String.equal p'.Program.name p.Program.name);
    check_bool "code" true (p'.Program.code = p.Program.code);
    check_bool "scalars" true (p'.Program.scalar_slots = p.Program.scalar_slots);
    check_bool "arrays" true (p'.Program.array_slots = p.Program.array_slots);
    check_int "stack" p.Program.stack_limit p'.Program.stack_limit;
    check_int "heap" p.Program.heap_limit p'.Program.heap_limit;
    check_int "steps" p.Program.step_limit p'.Program.step_limit;
    check_int "locals" p.Program.n_locals p'.Program.n_locals

let test_codec_deterministic () =
  let p = sample_program () in
  check_bool "stable" true (String.equal (Codec.encode p) (Codec.encode p))

let test_codec_rejects_garbage () =
  check_bool "empty" true (Result.is_error (Codec.decode ""));
  check_bool "bad magic" true (Result.is_error (Codec.decode "NOPE\x01"));
  let p = sample_program () in
  let good = Codec.encode p in
  (* Truncations at every prefix length must fail, not crash. *)
  for len = 0 to String.length good - 1 do
    check_bool
      (Printf.sprintf "truncated at %d" len)
      true
      (Result.is_error (Codec.decode (String.sub good 0 len)))
  done;
  (* Trailing junk rejected. *)
  check_bool "trailing" true (Result.is_error (Codec.decode (good ^ "x")))

let test_codec_bad_version () =
  let good = Codec.encode (sample_program ()) in
  let bad = Bytes.of_string good in
  Bytes.set bad 4 '\xFF';
  (match Codec.decode (Bytes.to_string bad) with
  | Error e -> check_bool "mentions version" true
      (let m = Codec.error_to_string e in
       let rec has i = i + 7 <= String.length m && (String.sub m i 7 = "version" || has (i+1)) in
       has 0)
  | Ok _ -> Alcotest.fail "bad version accepted");
  (* Corrupt an opcode tag deep in the stream. *)
  let bad2 = Bytes.of_string good in
  Bytes.set bad2 (Bytes.length bad2 - 1) '\xEE';
  check_bool "corrupt tail rejected" true (Result.is_error (Codec.decode (Bytes.to_string bad2)))

let test_codec_decoded_runs_identically () =
  let p = sample_program () in
  let p' = Result.get_ok (Codec.decode (Codec.encode p)) in
  let run prog =
    let env = Interp.make_env prog ~scalars:[| 32L; 0L |] ~arrays:[| [| 1L; 2L |] |] in
    let r = Interp.run prog ~env ~now ~rng:(rng ()) in
    (r, env.Interp.scalars.(1))
  in
  let r1, out1 = run p in
  let r2, out2 = run p' in
  check_bool "same outcome" true (Result.is_ok r1 = Result.is_ok r2);
  Alcotest.(check int64) "same output" out1 out2

let prop_codec_roundtrip_random =
  let gen_op =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map (fun v -> Op.Push (Int64.of_int v)) QCheck.Gen.int;
        QCheck.Gen.map (fun i -> Op.Load (abs i mod 8)) QCheck.Gen.small_int;
        QCheck.Gen.map (fun i -> Op.Jmp (abs i mod 64)) QCheck.Gen.small_int;
        QCheck.Gen.oneofl
          [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Rem; Op.Neg; Op.Band; Op.Bor; Op.Bxor;
            Op.Shl; Op.Shr; Op.Not; Op.Eq; Op.Ne; Op.Lt; Op.Le; Op.Gt; Op.Ge; Op.Pop;
            Op.Dup; Op.Swap; Op.Newarr; Op.Aload; Op.Astore; Op.Alen; Op.Rand; Op.Clock;
            Op.Hashmix; Op.Halt ];
      ]
  in
  QCheck.Test.make ~name:"codec round-trips arbitrary programs" ~count:300
    (QCheck.make (QCheck.Gen.array_size (QCheck.Gen.int_range 1 64) gen_op))
    (fun code ->
      let p = simple code in
      match Codec.decode (Codec.encode p) with
      | Ok p' -> p'.Program.code = p.Program.code
      | Error _ -> false)

let () =
  Alcotest.run "eden_bytecode"
    (bytecode_suites
    @ [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_codec_deterministic;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "bad version" `Quick test_codec_bad_version;
          Alcotest.test_case "decoded runs identically" `Quick
            test_codec_decoded_runs_identically;
          qcheck prop_codec_roundtrip_random;
        ] );
      ])
