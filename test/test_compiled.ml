(* Differential tests for the closure-compiled engine: Compiled.run must
   be observationally identical to Interp.run — same published env, same
   faults (constructor, pc, payload), same steps/max_stack/heap_cells —
   on the paper's example functions and on randomized verifier-accepted
   programs that exercise every fault class, loops (bulk step charging +
   slow-path fallback) and the heap. *)

open Eden_bytecode
module Op = Opcode
module G = QCheck.Gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Differential runner *)

let copy_env (env : Interp.env) =
  {
    Interp.scalars = Array.copy env.Interp.scalars;
    arrays = Array.map Array.copy env.Interp.arrays;
  }

let fault_str = Interp.fault_to_string

let stats_str (s : Interp.stats) =
  Printf.sprintf "steps=%d max_stack=%d heap_cells=%d" s.Interp.steps s.Interp.max_stack
    s.Interp.heap_cells

(* Runs both engines on private copies of [env] with identically seeded
   rngs; returns an error description on any observable divergence. *)
let differential ?(now = Eden_base.Time.us 100) ?(seed = 42L) (p : Program.t)
    (env : Interp.env) : (unit, string) result =
  match Compiled.compile p with
  | Error e -> Error ("compile refused a verified program: " ^ Verifier.error_to_string e)
  | Ok cp ->
    let env_i = copy_env env and env_c = copy_env env in
    (* [Rng.int] escapes both VMs with [Invalid_argument] when a huge
       bound wraps negative through [Int64.to_int]; the engines must
       agree even on that. *)
    let guard f = match f () with v -> `R v | exception Invalid_argument m -> `Inv m in
    let gi = guard (fun () -> Interp.run p ~env:env_i ~now ~rng:(Eden_base.Rng.create seed)) in
    let gc = guard (fun () -> Compiled.run cp ~env:env_c ~now ~rng:(Eden_base.Rng.create seed)) in
    match (gi, gc) with
    | `Inv a, `Inv b ->
      if String.equal a b then Ok ()
      else Error (Printf.sprintf "Invalid_argument differ: %s vs %s" a b)
    | `Inv a, `R _ -> Error ("interp raised Invalid_argument, compiled returned: " ^ a)
    | `R _, `Inv b -> Error ("compiled raised Invalid_argument, interp returned: " ^ b)
    | `R ri, `R rc ->

    let mismatch what a b = Error (Printf.sprintf "%s differ: interp=%s compiled=%s" what a b) in
    let check_stats (si : Interp.stats) (sc : Interp.stats) =
      if si <> sc then mismatch "stats" (stats_str si) (stats_str sc) else Ok ()
    in
    let check_env () =
      if env_i.Interp.scalars <> env_c.Interp.scalars then
        mismatch "published scalars"
          (String.concat "," (Array.to_list (Array.map Int64.to_string env_i.Interp.scalars)))
          (String.concat "," (Array.to_list (Array.map Int64.to_string env_c.Interp.scalars)))
      else if env_i.Interp.arrays <> env_c.Interp.arrays then
        Error "published arrays differ"
      else Ok ()
    in
    let ( let* ) = Result.bind in
    (match (ri, rc) with
    | Ok si, Ok sc ->
      let* () = check_stats si sc in
      check_env ()
    | Error (fi, si), Error (fc, sc) ->
      if fi <> fc then mismatch "faults" (fault_str fi) (fault_str fc)
      else
        let* () = check_stats si sc in
        check_env ()
    | Ok _, Error (fc, _) -> Error ("interp ok, compiled faulted: " ^ fault_str fc)
    | Error (fi, _), Ok _ -> Error ("interp faulted, compiled ok: " ^ fault_str fi))

(* ------------------------------------------------------------------ *)
(* The paper's example functions over randomized environments *)

let random_env (rand : Random.State.t) (p : Program.t) =
  let scalars =
    Array.map
      (fun _ -> Int64.of_int (Random.State.int rand 2048 - 16))
      (Array.make (Array.length p.Program.scalar_slots) ())
  in
  let arrays =
    Array.map
      (fun (s : Program.array_slot) ->
        let len = s.Program.a_min_len + Random.State.int rand 3 in
        Array.init len (fun _ -> Int64.of_int (Random.State.int rand 4096)))
      p.Program.array_slots
  in
  Interp.make_env p ~scalars ~arrays

let example_programs () =
  [
    ("wcmp", Eden_functions.Wcmp.program ());
    ("wcmp-message", Eden_functions.Wcmp.message_program ());
    ("pias", Eden_functions.Pias.program ());
    ("pulsar", Eden_functions.Pulsar.program ());
  ]

let test_examples_differential () =
  let rand = Random.State.make [| 7 |] in
  List.iter
    (fun (name, p) ->
      for i = 0 to 49 do
        let env = random_env rand p in
        match differential ~seed:(Int64.of_int (i * 31 + 1)) p env with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "%s (env %d): %s" name i msg
      done)
    (example_programs ())

(* ------------------------------------------------------------------ *)
(* Random structured programs, verifier-accepted by construction — the
   generator lives in {!Progen} so the sharded-data-path differential
   (test_parallel) can replay the same program distribution. *)

let gen_structured = Progen.gen_structured

let prop_differential_fuzz =
  QCheck.Test.make ~name:"compiled = interpreted on random structured programs"
    ~count:600
    (QCheck.make gen_structured)
    (fun (p, scalars, arrays) ->
      match Verifier.verify p with
      | Error _ ->
        (* By construction this should not happen; treat as failure so
           generator rot is caught. *)
        false
      | Ok () -> (
        let env = Interp.make_env p ~scalars ~arrays in
        match differential p env with
        | Ok () -> true
        | Error msg ->
          QCheck.Test.fail_reportf "divergence: %s@.program: %a" msg Program.pp p))

(* ------------------------------------------------------------------ *)
(* Deterministic slow-path coverage: a loop under every step limit from
   1 to just past its total cost must fault (or finish) identically. *)

let test_step_limit_boundaries () =
  let code =
    [|
      (* sum = 0; for i = 5 downto 1: sum += i *)
      (* 0 *) Op.Push 0L; Op.Store 1; Op.Push 5L; Op.Store 2;
      (* 4 *) Op.Load 2; Op.Jz 14;
      (* 6 *) Op.Load 1; Op.Load 2; Op.Add; Op.Store 1;
      (* 10 *) Op.Load 2; Op.Push 1L; Op.Sub; Op.Store 2;
      (* 14 is exit; 15 = jmp back *)
      Op.Load 1; Op.Store 0;
    |]
  in
  (* insert the back jump *)
  let code = Array.concat [ Array.sub code 0 14; [| Op.Jmp 4 |]; Array.sub code 14 2 ] in
  let scalar_slots =
    [|
      { Program.s_name = "Out"; s_entity = Program.Packet; s_access = Program.Read_write;
        s_local = 0 };
    |]
  in
  for limit = 1 to 45 do
    let p =
      Program.make ~name:"boundary" ~code ~scalar_slots ~n_locals:3 ~stack_limit:8
        ~heap_limit:8 ~step_limit:limit ()
    in
    let env = Interp.make_env p ~scalars:[| 0L |] ~arrays:[||] in
    match differential p env with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "step_limit=%d: %s" limit msg
  done

let test_compile_rejects_like_verifier () =
  let bad = [| Op.Add |] in
  let p =
    Program.make ~name:"bad" ~code:bad ~stack_limit:8 ~heap_limit:8 ~step_limit:100 ()
  in
  check_bool "verifier rejects" true (Result.is_error (Verifier.verify p));
  check_bool "compile rejects" true (Result.is_error (Compiled.compile p))

let test_exec_accessors () =
  let code = [| Op.Push 1L; Op.Push 2L; Op.Add; Op.Store 0 |] in
  let scalar_slots =
    [|
      { Program.s_name = "Out"; s_entity = Program.Packet; s_access = Program.Read_write;
        s_local = 0 };
    |]
  in
  let p =
    Program.make ~name:"acc" ~code ~scalar_slots ~stack_limit:8 ~heap_limit:8
      ~step_limit:100 ()
  in
  let cp = Result.get_ok (Compiled.compile p) in
  let env = Interp.make_env p ~scalars:[| 0L |] ~arrays:[||] in
  (match
     Compiled.exec cp ~env ~now:(Eden_base.Time.us 1) ~rng:(Eden_base.Rng.create 1L)
   with
  | None -> ()
  | Some f -> Alcotest.failf "fault: %s" (fault_str f));
  check_int "steps" 4 (Compiled.last_steps cp);
  check_int "max stack" 2 (Compiled.last_max_stack cp);
  check_int "heap" 0 (Compiled.last_heap_cells cp);
  Alcotest.(check int64) "published" 3L env.Interp.scalars.(0)

let qcheck t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Enclave-level engine differential: a whole enclave running Compiled
   actions must be packet-for-packet identical to one running the same
   programs Interpreted — decisions, packet mutations, step counts,
   faults — across the paper's functions and a mixed packet stream. *)

module Enclave = Eden_enclave.Enclave
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Class_name = Eden_base.Class_name
module Time = Eden_base.Time

let mk_flow i =
  Addr.five_tuple
    ~src:(Addr.endpoint 1 (1000 + (i mod 5)))
    ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp

let mk_metadata i =
  if i mod 3 = 0 then Metadata.empty
  else begin
    let op = if i mod 2 = 0 then "READ" else "WRITE" in
    let md = Metadata.with_msg_id (Int64.of_int (100 + (i mod 4))) Metadata.empty in
    let md =
      Metadata.add_class (Class_name.v ~stage:"storage" ~ruleset:"ops" ~name:op) md
    in
    let md = Metadata.add "operation" (Metadata.str op) md in
    let md = Metadata.add "tenant" (Metadata.int (i mod 3)) md in
    Metadata.add "msg_size" (Metadata.int (512 * (1 + (i mod 7)))) md
  end

let mk_packet i =
  Packet.make ~id:(Int64.of_int i) ~flow:(mk_flow i) ~kind:Packet.Data ~seq:i
    ~payload:(200 + (113 * i mod 1200))
    ~metadata:(mk_metadata i) ()

let decision_str = function
  | Enclave.Forward { queue; charge } ->
    Printf.sprintf "forward queue=%s charge=%d"
      (match queue with Some q -> string_of_int q | None -> "-")
      charge
  | Enclave.Dropped why -> "dropped: " ^ why

let check_stream_parity name ei ec =
  for i = 0 to 199 do
    let now = Time.us (10 * (i + 1)) in
    let pi = mk_packet i and pc = mk_packet i in
    let di = Enclave.process ei ~now pi in
    let dc = Enclave.process ec ~now pc in
    if di <> dc then
      Alcotest.failf "%s pkt %d: decisions differ: %s vs %s" name i (decision_str di)
        (decision_str dc);
    check_int (Printf.sprintf "%s pkt %d priority" name i) pi.Packet.priority
      pc.Packet.priority;
    check_bool
      (Printf.sprintf "%s pkt %d route label" name i)
      true
      (pi.Packet.route_label = pc.Packet.route_label)
  done;
  let ci = Enclave.counters ei and cc = Enclave.counters ec in
  check_int (name ^ " invocations") ci.Enclave.invocations cc.Enclave.invocations;
  check_int (name ^ " steps") ci.Enclave.interp_steps cc.Enclave.interp_steps;
  check_int (name ^ " faults") ci.Enclave.faults cc.Enclave.faults;
  check_int (name ^ " dropped") ci.Enclave.dropped cc.Enclave.dropped;
  check_int (name ^ " compiled ran") 0 ci.Enclave.compiled_invocations;
  check_bool (name ^ " compiled engine exercised") true
    (cc.Enclave.compiled_invocations > 0)

let get_ok = function Ok v -> v | Error m -> Alcotest.failf "unexpected error: %s" m

let test_enclave_differential () =
  let pair install =
    let ei = Enclave.create ~host:1 () and ec = Enclave.create ~host:1 () in
    get_ok (install ei `Interpreted);
    get_ok (install ec `Compiled);
    (ei, ec)
  in
  let thresholds = [| 1500L; 6000L |] in
  let ei, ec =
    pair (fun e v -> Eden_functions.Pias.install ~variant:v e ~thresholds)
  in
  check_stream_parity "pias" ei ec;
  let matrix = Eden_functions.Wcmp.ecmp_matrix ~labels:[ 1; 2; 3 ] in
  let ei, ec =
    pair (fun e v ->
        let v = match v with `Interpreted -> `Packet | `Compiled -> `Compiled in
        Eden_functions.Wcmp.install ~variant:v e ~matrix)
  in
  check_stream_parity "wcmp" ei ec;
  let queue_map = [| 1; 2; 3 |] in
  let ei, ec =
    pair (fun e v -> Eden_functions.Pulsar.install ~variant:v e ~queue_map)
  in
  check_stream_parity "pulsar" ei ec

(* ------------------------------------------------------------------ *)
(* Flow-cache invalidation: rule and action changes must take effect on
   the very next packet even when the class vector's resolution was
   cached. *)

let prio_program name prio =
  Program.make ~name
    ~code:[| Op.Push (Int64.of_int prio); Op.Store 0; Op.Halt |]
    ~scalar_slots:
      [|
        {
          Program.s_name = "Priority";
          s_entity = Program.Packet;
          s_access = Program.Read_write;
          s_local = 0;
        };
      |]
    ~n_locals:1 ()

let install_prio e name prio =
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = name; i_impl = Enclave.Interpreted (prio_program name prio);
         i_msg_sources = [] })

let priority_of e i =
  let pkt =
    Packet.make ~id:(Int64.of_int i) ~flow:(mk_flow 0) ~kind:Packet.Data ~payload:100 ()
  in
  (match Enclave.process e ~now:(Time.us (i + 1)) pkt with
  | Enclave.Forward _ -> ()
  | Enclave.Dropped why -> Alcotest.failf "unexpected drop: %s" why);
  pkt.Packet.priority

let pat s = Option.get (Class_name.Pattern.of_string s)

let test_cache_invalidation () =
  let e = Enclave.create ~host:1 () in
  install_prio e "lo" 2;
  let r_lo = get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"lo" ()) in
  check_int "lo fires" 2 (priority_of e 0);
  check_int "cached lo fires" 2 (priority_of e 1);
  (* A more specific rule added after the cache is warm must win
     immediately. *)
  install_prio e "hi" 6;
  let r_hi =
    get_ok (Enclave.add_table_rule e ~pattern:(pat "enclave.flows.ALL") ~action:"hi" ())
  in
  check_int "hi overrides cached entry" 6 (priority_of e 2);
  (* Removing the action drops its rules and the cache with them. *)
  (match Enclave.remove_action e "hi" with
  | Some n -> check_int "hi rules dropped" 1 n
  | None -> Alcotest.fail "hi was installed");
  check_bool "hi rule gone with the action" false
    (Enclave.remove_table_rule e r_hi);
  check_int "falls back to lo" 2 (priority_of e 3);
  (* Removing a rule by id invalidates too. *)
  check_bool "lo rule removed" true (Enclave.remove_table_rule e r_lo);
  check_int "no action left" 0 (priority_of e 4);
  check_bool "remove of unknown action" true (Enclave.remove_action e "nope" = None);
  (* Steady-state cache still charges invocations per packet. *)
  let c = Enclave.counters e in
  check_int "invocations counted through the cache" 4 c.Enclave.invocations

(* ------------------------------------------------------------------ *)
(* Fault handling: the ring keeps the most recent records, and array
   writes of a faulting invocation are not published (scratch binding),
   while a fault-free writer runs in place and publishes. *)

let array_slot name ~access ~min_len =
  { Program.a_name = name; a_entity = Program.Global; a_access = access; a_min_len = min_len }

let faulting_writer =
  (* writes A[0] then divides by zero: the write must not escape *)
  Program.make ~name:"faulty"
    ~code:
      [|
        Op.Push 0L; Op.Push 99L; Op.Gastore 0; Op.Push 1L; Op.Push 0L; Op.Div; Op.Pop;
        Op.Halt;
      |]
    ~array_slots:[| array_slot "A" ~access:Program.Read_write ~min_len:1 |]
    ()

let inplace_writer =
  (* provably fault-free constant-index store: runs in place on the live
     array *)
  Program.make ~name:"inplace"
    ~code:[| Op.Push 0L; Op.Push 77L; Op.Gastore_unsafe 0; Op.Halt |]
    ~array_slots:[| array_slot "A" ~access:Program.Read_write ~min_len:1 |]
    ()

let install_prog e name p =
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = name; i_impl = Enclave.Interpreted p; i_msg_sources = [] });
  ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:name ()));
  get_ok (Enclave.set_global_array e ~action:name "A" [| 5L |])

let test_fault_isolation_and_ring () =
  let e = Enclave.create ~host:1 () in
  ignore (install_prog e "faulty" faulting_writer);
  for i = 0 to 149 do
    ignore (priority_of e i)
  done;
  let c = Enclave.counters e in
  check_int "every invocation faulted" 150 c.Enclave.faults;
  let faults = Enclave.faults e in
  check_int "ring bounded" 100 (List.length faults);
  (match faults with
  | newest :: _ ->
    check_bool "newest first" true (Time.compare newest.Enclave.fr_time (Time.us 150) = 0)
  | [] -> Alcotest.fail "no fault records");
  check_bool "write did not escape the fault" true
    (Enclave.get_global_array e ~action:"faulty" "A" = Some [| 5L |]);
  (* The fault-free writer publishes in place. *)
  let e2 = Enclave.create ~host:1 () in
  ignore (install_prog e2 "inplace" inplace_writer);
  ignore (priority_of e2 0);
  check_int "no faults" 0 (Enclave.counters e2).Enclave.faults;
  check_bool "in-place write published" true
    (Enclave.get_global_array e2 ~action:"inplace" "A" = Some [| 77L |])

let engine_suites =
  [
    ( "compiled-engine",
      [
        Alcotest.test_case "examples differential" `Quick test_examples_differential;
        Alcotest.test_case "step-limit boundaries" `Quick test_step_limit_boundaries;
        Alcotest.test_case "compile rejects unverifiable" `Quick
          test_compile_rejects_like_verifier;
        Alcotest.test_case "exec accessors" `Quick test_exec_accessors;
        qcheck prop_differential_fuzz;
      ] );
    ( "enclave-engines",
      [
        Alcotest.test_case "enclave differential" `Quick test_enclave_differential;
        Alcotest.test_case "flow-cache invalidation" `Quick test_cache_invalidation;
        Alcotest.test_case "fault ring and isolation" `Quick
          test_fault_isolation_and_ring;
      ] );
  ]

let () = Alcotest.run "eden_compiled" engine_suites
