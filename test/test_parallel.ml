(* Sharded data path (Shard / Spsc / Shardclass / Rng.stream_seed).

   The heart of this suite is the differential harness: a sharded run
   (parallel or inline serial replay) must be observationally identical
   to the sequential enclave on the paper's example functions, the
   builtin native/bytecode functions, and hundreds of random
   verifier-accepted programs (Progen, shared with test_compiled).
   Around it: pinned RNG stream derivation, SPSC ring semantics
   (ordering, wraparound, blocking backpressure), state-partitioning
   classification, delta-counter merging, epoch visibility of
   [set_global] mid-stream, and serialized shared-store actions. *)

module Enclave = Eden_enclave.Enclave
module Shard = Eden_enclave.Shard
module Spsc = Eden_enclave.Spsc
module Shardclass = Eden_bytecode.Shardclass
module Program = Eden_bytecode.Program
module Op = Eden_bytecode.Opcode
module Verifier = Eden_bytecode.Verifier
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Class_name = Eden_base.Class_name
module Time = Eden_base.Time
module Rng = Eden_base.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let get_ok = function Ok v -> v | Error m -> Alcotest.failf "unexpected error: %s" m
let pat_all = Option.get (Class_name.Pattern.of_string "*.*.*")

(* ------------------------------------------------------------------ *)
(* Rng.stream_seed: pinned values — shard RNG streams are part of the
   reproducibility contract, so the exact derivation is frozen here. *)

let hex = Printf.sprintf "%Lx"

let test_stream_seed_pinned () =
  let seed = 0xEDE1L in
  let expect =
    [|
      0x90d809d82eb4f5e3L; 0xdea5ebc575501235L; 0x661f1aeb9ba1ec22L; 0xd4dba194b0bc17b6L;
    |]
  in
  Array.iteri
    (fun i e ->
      let got = Rng.stream_seed seed i in
      if got <> e then
        Alcotest.failf "stream_seed %d: expected %s got %s" i (hex e) (hex got))
    expect;
  (* First draws of stream 0 are pinned too: a change in [create] or the
     SplitMix constants must not slip past this test. *)
  let r = Rng.create (Rng.stream_seed seed 0) in
  let d0 = Rng.int64 r in
  let d1 = Rng.int64 r in
  if d0 <> 0x26651bb4f826e758L || d1 <> 0x7d1a0ce55568d09bL then
    Alcotest.failf "stream 0 draws: got %s %s" (hex d0) (hex d1)

let test_stream_seed_props () =
  (* Distinct indices give distinct seeds, and re-derivation is pure. *)
  let seen = Hashtbl.create 128 in
  for i = 0 to 63 do
    let s = Rng.stream_seed 42L i in
    if Hashtbl.mem seen s then Alcotest.failf "stream_seed collision at %d" i;
    Hashtbl.replace seen s ()
  done;
  check_bool "deterministic" true (Rng.stream_seed 42L 7 = Rng.stream_seed 42L 7);
  check_bool "negative index rejected" true
    (match Rng.stream_seed 42L (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* SPSC ring *)

let test_spsc_basic () =
  let q = Spsc.create ~dummy:(-1) 5 in
  check_int "capacity rounds up to a power of two" 8 (Spsc.capacity q);
  let buf = Array.make 8 (-1) in
  check_int "empty pop" 0 (Spsc.pop_batch q buf);
  (* Fill, overflow refused, drain in order — several times so the
     monotonic counters wrap the slot array repeatedly. *)
  let next = ref 0 in
  for _round = 0 to 5 do
    for _ = 1 to 8 do
      check_bool "push accepted" true (Spsc.try_push q !next);
      incr next
    done;
    check_bool "push on full refused" false (Spsc.try_push q 999_999);
    check_int "length" 8 (Spsc.length q);
    let small = Array.make 3 (-1) in
    let n = Spsc.pop_batch q small in
    check_int "batch limited by buffer" 3 n;
    let n2 = Spsc.pop_batch q buf in
    check_int "drained the rest" 5 n2;
    let got = Array.to_list (Array.sub small 0 3) @ Array.to_list (Array.sub buf 0 5) in
    let base = !next - 8 in
    List.iteri (fun i v -> check_int "FIFO order" (base + i) v) got
  done;
  check_int "no backpressure yet" 0 (Spsc.backpressure_waits q)

let test_spsc_concurrent () =
  (* Two domains, tiny ring, a consumer that refuses to drain until the
     ring is full and then sleeps: the producer must take the blocking
     path (spin budget << 50 ms), so backpressure_waits is guaranteed
     positive, and every item still arrives in order. *)
  let q = Spsc.create ~dummy:(-1) 8 in
  let total = 20_000 in
  let producer = Domain.spawn (fun () -> for i = 0 to total - 1 do Spsc.push q i done) in
  while Spsc.length q < Spsc.capacity q do
    Domain.cpu_relax ()
  done;
  Unix.sleepf 0.05;
  let buf = Array.make 64 (-1) in
  let received = ref 0 in
  while !received < total do
    let n = Spsc.pop_batch_wait q buf in
    for i = 0 to n - 1 do
      check_int "stream order" (!received + i) buf.(i)
    done;
    received := !received + n
  done;
  Domain.join producer;
  check_int "everything arrived" total !received;
  check_bool "producer parked at least once" true (Spsc.backpressure_waits q > 0)

(* ------------------------------------------------------------------ *)
(* Shardclass: state-partitioning classification *)

let scalar name entity access local =
  { Program.s_name = name; s_entity = entity; s_access = access; s_local = local }

let mk_prog ?(arrays = [||]) ~slots code =
  Program.make ~name:"t" ~code ~scalar_slots:slots ~array_slots:arrays
    ~n_locals:(Array.length slots + 2) ()

(* Size (Packet RO, local 0) / Total (Global RW, local 1): the canonical
   delta accumulator [Total := Total + Size]. *)
let delta_prog () =
  mk_prog
    ~slots:
      [|
        scalar "Size" Program.Packet Program.Read_only 0;
        scalar "Total" Program.Global Program.Read_write 1;
      |]
    [| Op.Load 1; Op.Load 0; Op.Add; Op.Store 1; Op.Halt |]

let const_store_prog () =
  mk_prog
    ~slots:[| scalar "G" Program.Global Program.Read_write 0 |]
    [| Op.Push 7L; Op.Store 0; Op.Halt |]

let test_shardclass () =
  let check name k p =
    let got = Shardclass.classify p in
    if got <> k then
      Alcotest.failf "%s: expected %s got %s" name (Shardclass.to_string k)
        (Shardclass.to_string got)
  in
  (* The paper's functions carry no global writes: fully sharded. *)
  check "pias" Shardclass.Sharded (Eden_functions.Pias.program ());
  check "pulsar" Shardclass.Sharded (Eden_functions.Pulsar.program ());
  check "wcmp" Shardclass.Sharded (Eden_functions.Wcmp.program ());
  check_bool "wcmp draws randomness" true
    (Shardclass.uses_rand (Eden_functions.Wcmp.program ()));
  check_bool "pias is deterministic" false
    (Shardclass.uses_rand (Eden_functions.Pias.program ()));
  (* Proved accumulator → per-shard deltas on slot 1. *)
  check "accumulator" (Shardclass.Sharded_delta [ 1 ]) (delta_prog ());
  (* Non-accumulator global write → serialized. *)
  check "constant store" Shardclass.Serialized (const_store_prog ());
  (* Double load of the accumulated global (Total := 2*Total) is not a
     pure increment. *)
  check "double load" Shardclass.Serialized
    (mk_prog
       ~slots:
         [|
           scalar "Size" Program.Packet Program.Read_only 0;
           scalar "Total" Program.Global Program.Read_write 1;
         |]
       [| Op.Load 1; Op.Load 1; Op.Add; Op.Store 1; Op.Halt |]);
  (* Global array write → serialized. *)
  check "array write" Shardclass.Serialized
    (mk_prog
       ~slots:[||]
       ~arrays:
         [|
           {
             Program.a_name = "B";
             a_entity = Program.Global;
             a_access = Program.Read_write;
             a_min_len = 1;
           };
         |]
       [| Op.Push 0L; Op.Push 5L; Op.Gastore 0; Op.Halt |]);
  (* A jump landing between Load and Store breaks the single-visit
     proof. *)
  check "jump into accumulator window" Shardclass.Serialized
    (mk_prog
       ~slots:
         [|
           scalar "Size" Program.Packet Program.Read_only 0;
           scalar "Total" Program.Global Program.Read_write 1;
         |]
       [| Op.Jmp 2; Op.Load 1; Op.Load 0; Op.Add; Op.Store 1; Op.Halt |])

(* ------------------------------------------------------------------ *)
(* Differential harness *)

let mk_flow i =
  Addr.five_tuple
    ~src:(Addr.endpoint 1 (1000 + (i mod 8)))
    ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp

(* The mixed stream of test_compiled: every third packet metadata-less
   (classified by the enclave's own flow stage), the rest carrying
   storage-stage classes, msg ids, tenant and op size. *)
let mk_metadata i =
  if i mod 3 = 0 then Metadata.empty
  else begin
    let op = if i mod 2 = 0 then "READ" else "WRITE" in
    let md = Metadata.with_msg_id (Int64.of_int (100 + (i mod 4))) Metadata.empty in
    let md =
      Metadata.add_class (Class_name.v ~stage:"storage" ~ruleset:"ops" ~name:op) md
    in
    let md = Metadata.add "operation" (Metadata.str op) md in
    let md = Metadata.add "tenant" (Metadata.int (i mod 3)) md in
    Metadata.add "msg_size" (Metadata.int (512 * (1 + (i mod 7)))) md
  end

let mk_packet ?metadata i =
  let metadata = match metadata with Some m -> m | None -> mk_metadata i in
  Packet.make ~id:(Int64.of_int i) ~flow:(mk_flow i) ~kind:Packet.Data ~seq:i
    ~payload:(200 + (113 * i mod 1200))
    ~metadata ()

let decision_str = function
  | Enclave.Forward { queue; charge } ->
    Printf.sprintf "forward queue=%s charge=%d"
      (match queue with Some q -> string_of_int q | None -> "-")
      charge
  | Enclave.Dropped why -> "dropped: " ^ why

(* A stream is regenerated for every run: enclaves mutate packets in
   place, so each run needs private but identical copies.  [gen i]
   returns the i-th event. *)
type stream = { len : int; gen : int -> Shard.event }

let materialize stream =
  let pkts = Array.make stream.len None in
  let events =
    Array.init stream.len (fun i ->
        let ev = stream.gen i in
        (match ev with Shard.Ev_packet (_, p) -> pkts.(i) <- Some p | _ -> ());
        ev)
  in
  (events, pkts)

let packet_stream ?metadata n =
  { len = n; gen = (fun i -> Shard.Ev_packet (Time.us (10 * (i + 1)), mk_packet ?metadata i)) }

(* Sequential reference: the events applied in order to a plain enclave. *)
let run_seq enclave stream =
  let events, pkts = materialize stream in
  let res =
    Array.map
      (function
        | Shard.Ev_packet (now, pkt) -> Some (Enclave.process enclave ~now pkt)
        | Shard.Ev_set_global { action; name; value } ->
          get_ok (Enclave.set_global enclave ~action name value);
          None
        | Shard.Ev_set_global_array { action; name; values } ->
          get_ok (Enclave.set_global_array enclave ~action name values);
          None)
      events
  in
  (res, pkts)

let run_shard ?ring_capacity ?batch ~shards ~parallel source stream k =
  let s = get_ok (Shard.create ?ring_capacity ?batch ~shards ~parallel source) in
  let events, pkts = materialize stream in
  let res = Shard.process_stream s events in
  check_int "no worker errors" 0 (Shard.worker_errors s);
  let out = k s (res, pkts) in
  Shard.stop s;
  out

let check_same_run name (ra, pa) (rb, pb) =
  Array.iteri
    (fun i da ->
      let db = rb.(i) in
      (match (da, db) with
      | None, None -> ()
      | Some da, Some db when da = db -> ()
      | _ ->
        let str = function None -> "<ctl>" | Some d -> decision_str d in
        Alcotest.failf "%s ev %d: decisions differ: %s vs %s" name i (str da) (str db));
      match (pa.(i), pb.(i)) with
      | None, None -> ()
      | Some (a : Packet.t), Some (b : Packet.t) ->
        if a.Packet.priority <> b.Packet.priority then
          Alcotest.failf "%s pkt %d: priority %d vs %d" name i a.Packet.priority
            b.Packet.priority;
        if a.Packet.route_label <> b.Packet.route_label then
          Alcotest.failf "%s pkt %d: route labels differ" name i
      | _ -> Alcotest.failf "%s ev %d: packet presence differs" name i)
    ra

(* Counters comparable across sharded and sequential runs — cache
   hit/miss splits are excluded on purpose (per-shard caches warm
   independently), everything decision-relevant is included. *)
let check_same_counters name (a : Enclave.counters) (b : Enclave.counters) =
  check_int (name ^ " packets") a.Enclave.packets b.Enclave.packets;
  check_int (name ^ " dropped") a.Enclave.dropped b.Enclave.dropped;
  check_int (name ^ " invocations") a.Enclave.invocations b.Enclave.invocations;
  check_int (name ^ " native") a.Enclave.native_invocations b.Enclave.native_invocations;
  check_int (name ^ " compiled") a.Enclave.compiled_invocations
    b.Enclave.compiled_invocations;
  check_int (name ^ " faults") a.Enclave.faults b.Enclave.faults;
  check_int (name ^ " steps") a.Enclave.interp_steps b.Enclave.interp_steps

(* Deterministic actions: sharded (parallel, at several widths) must
   match the plain sequential enclave exactly. *)
let differential_vs_seq name source stream =
  let seq_res = run_seq source stream in
  let seq_counters = Enclave.counters source in
  List.iter
    (fun shards ->
      run_shard ~shards ~parallel:true source stream (fun s run ->
          check_same_run (Printf.sprintf "%s/%d" name shards) seq_res run;
          check_same_counters (Printf.sprintf "%s/%d" name shards) seq_counters
            (Shard.counters s)))
    [ 1; 2; 4 ]

(* Rand-using actions: per-shard RNG streams differ from the sequential
   enclave's by construction, so the reference is the inline serial
   replay of the same sharded configuration — plus a determinism check
   (two parallel runs agree). *)
let differential_vs_replay name source stream =
  List.iter
    (fun shards ->
      let replay =
        run_shard ~shards ~parallel:false source stream (fun s run ->
            (run, Shard.counters s))
      in
      let replay_run, replay_counters = replay in
      run_shard ~shards ~parallel:true source stream (fun s run ->
          check_same_run (Printf.sprintf "%s/%d par=replay" name shards) replay_run run;
          check_same_counters (Printf.sprintf "%s/%d" name shards) replay_counters
            (Shard.counters s));
      run_shard ~shards ~parallel:true source stream (fun _ run ->
          check_same_run (Printf.sprintf "%s/%d rerun" name shards) replay_run run))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* The .eden examples, compiled from source exactly as the CLI does. *)

let load_example file =
  (* cwd is _build/default/test under `dune runtest`, the project root
     under `dune exec`. *)
  let candidates =
    [ "../examples/actions"; "examples/actions"; "../../examples/actions" ]
  in
  let dir =
    match List.find_opt (fun d -> Sys.file_exists (Filename.concat d (file ^ ".eden"))) candidates with
    | Some d -> d
    | None -> Alcotest.failf "%s.eden not found from %s" file (Sys.getcwd ())
  in
  let path = Filename.concat dir (file ^ ".eden") in
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  match Eden_lang.Parser.parse_action ~name:file src with
  | Error e -> Alcotest.failf "%s: parse: %s" file (Eden_lang.Parser.error_to_string e)
  | Ok action -> (
    let schema = Eden_lang.Schema.infer action in
    match Eden_lang.Compile.compile schema action with
    | Error e -> Alcotest.failf "%s: compile: %s" file (Eden_lang.Compile.error_to_string e)
    | Ok program -> program)

let install_program e impl program globals arrays =
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = program.Program.name; i_impl = impl program; i_msg_sources = [] });
  List.iter
    (fun (n, v) -> get_ok (Enclave.set_global e ~action:program.Program.name n v))
    globals;
  List.iter
    (fun (n, v) -> get_ok (Enclave.set_global_array e ~action:program.Program.name n v))
    arrays;
  ignore (get_ok (Enclave.add_table_rule e ~pattern:pat_all ~action:program.Program.name ()))

let example_sources name =
  match name with
  | "threshold_priority" -> ([], [ ("Cuts", [| 1_000L; 5_000L; 20_000L |]) ])
  | "flow_meter" -> ([ ("RatePerUs", 8L); ("BucketDepth", 30_000L) ], [])
  | "weighted_paths" -> ([], [ ("Routes", [| 1L; 60L; 2L; 30L; 3L; 10L |]) ])
  | _ -> assert false

let run_example name impl =
  let program = load_example name in
  check_bool (name ^ " classified sharded") true
    (Shardclass.classify program = Shardclass.Sharded);
  let globals, arrays = example_sources name in
  let source = Enclave.create ~host:1 () in
  install_program source impl program globals arrays;
  let stream = packet_stream ~metadata:Metadata.empty 400 in
  if Shardclass.uses_rand program then differential_vs_replay name source stream
  else differential_vs_seq name source stream

let test_examples_interpreted () =
  List.iter
    (fun n -> run_example n (fun p -> Enclave.Interpreted p))
    [ "threshold_priority"; "flow_meter"; "weighted_paths" ]

let test_examples_compiled () =
  List.iter
    (fun n -> run_example n (fun p -> Enclave.Compiled p))
    [ "threshold_priority"; "flow_meter"; "weighted_paths" ]

(* ------------------------------------------------------------------ *)
(* Builtin functions over the mixed stream (stage metadata + bare flows) *)

let test_builtin_functions () =
  let stream = packet_stream 300 in
  let with_source install k =
    let e = Enclave.create ~host:1 () in
    get_ok (install e);
    k e
  in
  List.iter
    (fun variant ->
      with_source
        (fun e -> Eden_functions.Pias.install ~variant e ~thresholds:[| 1500L; 6000L |])
        (fun e -> differential_vs_seq "pias" e stream);
      with_source
        (fun e -> Eden_functions.Pulsar.install ~variant e ~queue_map:[| 1; 2; 3 |])
        (fun e -> differential_vs_seq "pulsar" e stream))
    [ `Interpreted; `Compiled ];
  (* SFF reads flow_size metadata; feed it its own stream. *)
  let sff_stream =
    {
      len = 300;
      gen =
        (fun i ->
          let md = Eden_functions.Sff.metadata_for ~size:(512 * (1 + (i mod 9))) in
          Shard.Ev_packet (Time.us (10 * (i + 1)), mk_packet ~metadata:md i));
    }
  in
  List.iter
    (fun variant ->
      with_source
        (fun e -> Eden_functions.Sff.install ~variant e ~thresholds:[| 1024L; 4096L |])
        (fun e -> differential_vs_seq "sff" e sff_stream))
    [ `Interpreted; `Compiled ];
  (* WCMP's packet variant draws per-packet randomness: replay reference. *)
  let matrix = Eden_functions.Wcmp.ecmp_matrix ~labels:[ 1; 2; 3 ] in
  List.iter
    (fun variant ->
      with_source
        (fun e -> Eden_functions.Wcmp.install ~variant e ~matrix)
        (fun e -> differential_vs_replay "wcmp" e stream))
    [ `Packet; `Compiled ]

(* Native PIAS is opaque to the classifier → serialized shared store.
   Its decisions depend only on per-message state, so even the parallel
   run must match the sequential enclave packet-for-packet — this
   exercises the per-action mutex and the disjoint flow-id ranges. *)
let test_native_serialized () =
  let e = Enclave.create ~host:1 () in
  get_ok (Eden_functions.Pias.install ~variant:`Native e ~thresholds:[| 1500L; 6000L |]);
  let stream = packet_stream 300 in
  let seq = run_seq e stream in
  let seq_counters = Enclave.counters e in
  check_bool "native engine exercised" true (seq_counters.Enclave.native_invocations > 0);
  run_shard ~shards:4 ~parallel:true e stream (fun s run ->
      check_bool "classified serialized" true
        (List.mem_assoc "pias" (Shard.classification s)
        && List.assoc "pias" (Shard.classification s) = Shardclass.Serialized);
      check_same_run "native-pias/4" seq run;
      check_same_counters "native-pias/4" seq_counters (Shard.counters s))

(* ------------------------------------------------------------------ *)
(* Random structured programs (Progen, shared with test_compiled) *)

let rename_progen_slots (p : Program.t) =
  (* Progen's packet slots are named for engine-level tests; map them to
     marshallable enclave packet fields (RO "Size", RW "Priority"). *)
  let slots = Array.map (fun s -> s) p.Program.scalar_slots in
  slots.(0) <- { (slots.(0)) with Program.s_name = "Size" };
  slots.(1) <- { (slots.(1)) with Program.s_name = "Priority" };
  { p with Program.scalar_slots = slots }

let test_random_programs () =
  let rand = Random.State.make [| 0xEDE1 |] in
  for case = 0 to 199 do
    let raw, _scalars, arrays = Progen.gen_structured rand in
    let p = rename_progen_slots raw in
    (match Verifier.verify p with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "case %d: generator emitted unverifiable program: %s" case
        (Verifier.error_to_string e));
    let klass = Shardclass.classify p in
    let source = Enclave.create ~host:1 () in
    (* Step limits up to 10k would fail cost admission at the default
       budget; admission is not under test here. *)
    Enclave.set_budget_ns source 1e12;
    let impl = if case mod 2 = 0 then Enclave.Interpreted p else Enclave.Compiled p in
    install_program source (fun _ -> impl) p []
      [ ("A", arrays.(0)); ("B", arrays.(1)) ];
    (* Serialized programs interleave nondeterministically across shards
       on shared state, so exact comparison needs a single routing key;
       partitionable programs get a multi-flow stream. *)
    let stream =
      if klass = Shardclass.Serialized then
        {
          len = 24;
          gen =
            (fun i ->
              Shard.Ev_packet
                ( Time.us (10 * (i + 1)),
                  Packet.make ~id:(Int64.of_int i) ~flow:(mk_flow 0) ~kind:Packet.Data
                    ~seq:i
                    ~payload:(100 + (37 * i mod 1400))
                    ~metadata:Metadata.empty () ))
        }
      else packet_stream ~metadata:Metadata.empty 24
    in
    let name = Printf.sprintf "fuzz-%d(%s)" case (Shardclass.to_string klass) in
    let final_b s = Shard.get_global_array s ~action:"fuzz" "B" in
    (* Parallel vs serial replay at 2 shards, always — including the
       published global array. *)
    let replay_run, replay_b, replay_counters =
      run_shard ~shards:2 ~parallel:false source stream (fun s run ->
          (run, final_b s, Shard.counters s))
    in
    run_shard ~shards:2 ~parallel:true source stream (fun s run ->
        check_same_run (name ^ " par=replay") replay_run run;
        check_same_counters name replay_counters (Shard.counters s);
        if final_b s <> replay_b then Alcotest.failf "%s: global array B differs" name);
    (* Deterministic programs additionally match the sequential enclave. *)
    if not (Shardclass.uses_rand p) then begin
      let seq_run = run_seq source stream in
      check_same_run (name ^ " replay=seq") replay_run seq_run;
      check_same_counters (name ^ " seq") replay_counters (Enclave.counters source);
      let seq_b = Enclave.get_global_array source ~action:"fuzz" "B" in
      if replay_b <> seq_b then Alcotest.failf "%s: global array B differs from seq" name
    end
  done

(* ------------------------------------------------------------------ *)
(* Delta-counter merge *)

let test_delta_merge () =
  let p = delta_prog () in
  let mk () =
    let e = Enclave.create ~host:1 () in
    install_program e (fun p -> Enclave.Interpreted p) p [ ("Total", 0L) ] [];
    e
  in
  let stream =
    {
      len = 501;
      gen =
        (fun i ->
          if i = 250 then
            (* Mid-stream overwrite: deltas accumulated before it must
               be discarded by the merge on every shard. *)
            Shard.Ev_set_global { action = "t"; name = "Total"; value = 1_000_000L }
          else Shard.Ev_packet (Time.us (10 * (i + 1)), mk_packet ~metadata:Metadata.empty i))
    }
  in
  let seq = mk () in
  let _ = run_seq seq stream in
  let expect = Option.get (Enclave.get_global seq ~action:"t" "Total") in
  check_bool "sequential total moved past the overwrite" true (expect > 1_000_000L);
  List.iter
    (fun shards ->
      let source = mk () in
      run_shard ~shards ~parallel:true source stream (fun s _ ->
          check_bool
            (Printf.sprintf "classified delta (%d shards)" shards)
            true
            (List.assoc "t" (Shard.classification s) = Shardclass.Sharded_delta [ 1 ]);
          let merged = Option.get (Shard.get_global s ~action:"t" "Total") in
          if merged <> expect then
            Alcotest.failf "shards=%d: merged total %Ld, sequential %Ld" shards merged
              expect;
          check_int "all packets" 500 (Shard.counters s).Enclave.packets))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Epoch visibility: set_global lands between two packets of the stream
   and must be visible to exactly the packets after it, on every shard. *)

let epoch_prog () =
  mk_prog
    ~slots:
      [|
        scalar "Priority" Program.Packet Program.Read_write 0;
        scalar "Level" Program.Global Program.Read_only 1;
      |]
    [| Op.Load 1; Op.Store 0; Op.Halt |]

let test_epoch_visibility () =
  let p = epoch_prog () in
  let n = 120 and cut = 60 in
  let stream =
    {
      len = n + 1;
      gen =
        (fun i ->
          (* 5 stays inside the packet-priority clamp. *)
          if i = cut then Shard.Ev_set_global { action = "t"; name = "Level"; value = 5L }
          else Shard.Ev_packet (Time.us (10 * (i + 1)), mk_packet ~metadata:Metadata.empty i))
    }
  in
  List.iter
    (fun shards ->
      let source = Enclave.create ~host:1 () in
      install_program source (fun p -> Enclave.Interpreted p) p [ ("Level", 3L) ] [];
      run_shard ~shards ~parallel:true source stream (fun _ (res, pkts) ->
          Array.iteri
            (fun i pkt ->
              match pkt with
              | None -> check_bool "ctl event has no decision" true (res.(i) = None)
              | Some (pkt : Packet.t) ->
                let want = if i < cut then 3 else 5 in
                if pkt.Packet.priority <> want then
                  Alcotest.failf "shards=%d pkt %d: priority %d, want %d" shards i
                    pkt.Packet.priority want)
            pkts))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Ring overflow / backpressure at the Shard level: a tiny ring and a
   long stream force the feeder onto the blocking path; nothing may be
   lost or reordered per key. *)

let test_shard_backpressure () =
  let source = Enclave.create ~host:1 () in
  get_ok (Eden_functions.Pias.install ~variant:`Compiled source ~thresholds:[| 1500L; 6000L |]);
  let stream = packet_stream 4000 in
  let seq = run_seq source stream in
  run_shard ~ring_capacity:4 ~batch:2 ~shards:2 ~parallel:true source stream (fun s run ->
      check_same_run "backpressure" seq run;
      check_int "all packets" 4000 (Shard.counters s).Enclave.packets;
      check_bool "backpressure counted, never lost" true (Shard.backpressure_waits s >= 0))

(* ------------------------------------------------------------------ *)
(* Serialized bytecode action: shared store, exact final state *)

let test_serialized_shared_store () =
  let p = const_store_prog () in
  let source = Enclave.create ~host:1 () in
  install_program source (fun p -> Enclave.Interpreted p) p [ ("G", 0L) ] [];
  let stream = packet_stream ~metadata:Metadata.empty 200 in
  run_shard ~shards:4 ~parallel:true source stream (fun s _ ->
      check_bool "classified serialized" true
        (List.assoc "t" (Shard.classification s) = Shardclass.Serialized);
      check_bool "shared global converged" true
        (Shard.get_global s ~action:"t" "G" = Some 7L);
      check_int "every invocation ran" 200 (Shard.counters s).Enclave.invocations)

(* ------------------------------------------------------------------ *)
(* Flow-cache statistics and capacity *)

let test_flow_cache_stats () =
  check_int "default capacity" 4096 (Enclave.flow_cache_capacity (Enclave.create ~host:1 ()));
  check_bool "zero capacity rejected" true
    (match Enclave.create ~flow_cache_capacity:0 ~host:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let e = Enclave.create ~flow_cache_capacity:2 ~host:1 () in
  let p = epoch_prog () in
  install_program e (fun p -> Enclave.Interpreted p) p [ ("Level", 1L) ] [];
  (* Three distinct class vectors, two packets each, capacity 2:
     miss+hit for the first two vectors, then the third overflows the
     cache — both cached vectors are dropped — and itself misses then
     hits.  (Metadata-less flows all share one flow-stage class, so
     distinct vectors need explicit metadata classes.) *)
  let md name =
    Metadata.add_class (Class_name.v ~stage:"app" ~ruleset:"kind" ~name) Metadata.empty
  in
  List.iteri
    (fun i kind ->
      let pkt =
        Packet.make ~id:(Int64.of_int i) ~flow:(mk_flow 0) ~kind:Packet.Data
          ~payload:100 ~metadata:(md kind) ()
      in
      ignore (Enclave.process e ~now:(Time.us (i + 1)) pkt))
    [ "a"; "a"; "b"; "b"; "c"; "c" ];
  let c = Enclave.counters e in
  check_int "misses" 3 c.Enclave.cache_misses;
  check_int "hits" 3 c.Enclave.cache_hits;
  check_int "evictions" 2 c.Enclave.cache_evictions

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let test_stop () =
  let source = Enclave.create ~host:1 () in
  get_ok (Eden_functions.Pias.install source ~thresholds:[| 1500L |]);
  let s = get_ok (Shard.create ~shards:2 ~parallel:true source) in
  let _ = Shard.process_stream s (fst (materialize (packet_stream 10))) in
  Shard.stop s;
  Shard.stop s;
  check_bool "streams rejected after stop" true
    (match Shard.process_stream s [||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "shards bounds" true (Result.is_error (Shard.create ~shards:0 source));
  check_bool "shards upper bound" true (Result.is_error (Shard.create ~shards:65 source))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "rng-streams",
        [
          Alcotest.test_case "pinned derivation" `Quick test_stream_seed_pinned;
          Alcotest.test_case "distinct + pure" `Quick test_stream_seed_props;
        ] );
      ( "spsc",
        [
          Alcotest.test_case "order, wraparound, overflow" `Quick test_spsc_basic;
          Alcotest.test_case "two-domain backpressure" `Quick test_spsc_concurrent;
        ] );
      ("shardclass", [ Alcotest.test_case "classification" `Quick test_shardclass ]);
      ( "differential",
        [
          Alcotest.test_case "examples (interpreted)" `Quick test_examples_interpreted;
          Alcotest.test_case "examples (compiled)" `Quick test_examples_compiled;
          Alcotest.test_case "builtin functions" `Quick test_builtin_functions;
          Alcotest.test_case "native pias serialized" `Quick test_native_serialized;
          Alcotest.test_case "200 random programs" `Slow test_random_programs;
        ] );
      ( "state",
        [
          Alcotest.test_case "delta merge" `Quick test_delta_merge;
          Alcotest.test_case "epoch visibility" `Quick test_epoch_visibility;
          Alcotest.test_case "serialized shared store" `Quick test_serialized_shared_store;
          Alcotest.test_case "flow-cache stats" `Quick test_flow_cache_stats;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "ring backpressure" `Quick test_shard_backpressure;
          Alcotest.test_case "stop" `Quick test_stop;
        ] );
    ]
