(* Tests for the robustness layer: the fallible control channel's fault
   semantics, controller retry and desired-state reconciliation, the
   enclave's circuit breaker and snapshot/restore, and the chaos
   scenarios under their CI seed. *)

module Enclave = Eden_enclave.Enclave
module Channel = Eden_controller.Channel
module Controller = Eden_controller.Controller
module Desired = Eden_controller.Desired
module Policy = Eden_controller.Policy
module Chaos = Eden_experiments.Chaos
module Pias = Eden_functions.Pias
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Pattern = Eden_base.Class_name.Pattern
module Time = Eden_base.Time
open Eden_lang

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let get_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let get_sent = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected channel error: %s" (Channel.error_to_string e)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  go 0

let flow ?(src = 1) ?(src_port = 1000) () =
  Addr.five_tuple ~src:(Addr.endpoint src src_port) ~dst:(Addr.endpoint 2 80)
    ~proto:Addr.Tcp

let data_packet ?(id = 0L) f =
  Packet.make ~id ~flow:f ~kind:Packet.Data ~payload:1000 ~metadata:Metadata.empty ()

(* An action that faults (division by zero) whenever the global [D] is
   zero — the controllable fault source for breaker tests. *)
let divider_spec =
  let schema = Schema.with_standard_packet ~global:[ Schema.field "D" ] () in
  let act = Dsl.(action "divider" (set_pkt "Priority" (int 6 / glob "D"))) in
  let program =
    match Compile.compile schema act with
    | Ok p -> p
    | Error e -> invalid_arg (Compile.error_to_string e)
  in
  { Enclave.i_name = "divider"; i_impl = Enclave.Interpreted program; i_msg_sources = [] }

let divider_enclave ~d =
  let e = Enclave.create ~host:1 () in
  get_ok (Enclave.install_action e divider_spec);
  get_ok (Enclave.set_global e ~action:"divider" "D" d);
  let _ = get_ok (Enclave.add_table_rule e ~pattern:Pattern.any ~action:"divider" ()) in
  e

let set_d = Channel.Set_global { action = "divider"; name = "D"; value = 7L }

(* ------------------------------------------------------------------ *)
(* Channel fault semantics *)

let test_channel_drop () =
  let ch = Channel.create (divider_enclave ~d:1L) in
  Channel.script ch [ (0, Channel.Drop) ];
  (match Channel.send ch ~op_id:1L ~gen:1 set_d with
  | Error Channel.Lost -> ()
  | r -> Alcotest.failf "expected Lost, got %s" (match r with Ok _ -> "Ok" | Error e -> Channel.error_to_string e));
  check_bool "op not applied" true
    (Enclave.get_global (Channel.enclave ch) ~action:"divider" "D" = Some 1L);
  check_int "fault counted" 1 (Channel.faults_injected ch)

let test_channel_ack_lost_then_retry () =
  let ch = Channel.create (divider_enclave ~d:1L) in
  Channel.script ch [ (0, Channel.Ack_lost) ];
  (match Channel.send ch ~op_id:1L ~gen:1 set_d with
  | Error Channel.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout");
  check_bool "op applied despite lost ack" true
    (Enclave.get_global (Channel.enclave ch) ~action:"divider" "D" = Some 7L);
  (* The retry replays the memoized outcome instead of re-applying. *)
  let _ = get_sent (Channel.send ch ~op_id:1L ~gen:1 set_d) in
  check_int "acked generation advanced once" 1 (Channel.acked_generation ch)

let test_channel_duplicate_is_exactly_once () =
  let ch = Channel.create (divider_enclave ~d:1L) in
  Channel.script ch [ (0, Channel.Duplicate) ];
  let rule = Channel.Add_rule { table = 0; pattern = Pattern.any; action = "divider" } in
  let _ = get_sent (Channel.send ch ~op_id:1L ~gen:1 rule) in
  let sn = Enclave.snapshot (Channel.enclave ch) in
  let nrules = List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 sn.Enclave.sn_rules in
  check_int "duplicate delivery added one rule, not two" 2 nrules
(* 2 = the rule installed by divider_enclave plus exactly one from the op. *)

let test_channel_delay () =
  let ch = Channel.create (divider_enclave ~d:1L) in
  Channel.script ch [ (0, Channel.Delay 1) ];
  (match Channel.send ch ~op_id:1L ~gen:1 set_d with
  | Error Channel.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout");
  check_int "op held back" 1 (Channel.delayed_count ch);
  check_bool "not applied yet" true
    (Enclave.get_global (Channel.enclave ch) ~action:"divider" "D" = Some 1L);
  (* The next protocol interaction first flushes what is due. *)
  let _ =
    get_sent
      (Channel.send ch ~op_id:2L ~gen:2
         (Channel.Set_global { action = "divider"; name = "D"; value = 9L }))
  in
  check_int "nothing still delayed" 0 (Channel.delayed_count ch);
  check_bool "delayed op landed before the later one" true
    (Enclave.get_global (Channel.enclave ch) ~action:"divider" "D" = Some 9L)

let test_channel_crash_restart () =
  let ch = Channel.create (divider_enclave ~d:1L) in
  let _ = get_sent (Channel.send ch ~op_id:1L ~gen:1 set_d) in
  check_int "acked 1" 1 (Channel.acked_generation ch);
  Channel.script ch [ (1, Channel.Crash_restart) ];
  (match Channel.send ch ~op_id:2L ~gen:2 set_d with
  | Error Channel.Crashed -> ()
  | _ -> Alcotest.fail "expected Crashed");
  check_bool "soft state wiped" true (Enclave.action_names (Channel.enclave ch) = []);
  check_int "acked watermark wiped" 0 (Channel.acked_generation ch);
  check_int "restart recorded" 1 (Enclave.restarts (Channel.enclave ch));
  (* The memo died with the enclave: the retried op is genuinely
     re-applied, and fails because the action is gone. *)
  match Channel.send ch ~op_id:2L ~gen:2 set_d with
  | Error (Channel.Rejected _) -> ()
  | _ -> Alcotest.fail "expected Rejected on the wiped enclave"

let test_channel_partition () =
  let ch = Channel.create (divider_enclave ~d:1L) in
  Channel.set_partitioned ch true;
  (match Channel.send ch ~op_id:1L ~gen:1 set_d with
  | Error Channel.Partitioned -> ()
  | _ -> Alcotest.fail "expected Partitioned");
  (match Channel.pull_state ch with
  | Error Channel.Partitioned -> ()
  | _ -> Alcotest.fail "expected Partitioned read");
  Channel.set_partitioned ch false;
  check_bool "a partition drops, it does not queue" true
    (Enclave.get_global (Channel.enclave ch) ~action:"divider" "D" = Some 1L);
  let _ = get_sent (Channel.send ch ~op_id:2L ~gen:1 set_d) in
  ()

let test_channel_random_faults_deterministic () =
  let run () =
    let ch = Channel.create ~seed:9L (divider_enclave ~d:1L) in
    Channel.set_fault_rate ch 0.4;
    List.init 40 (fun i ->
        match Channel.send ch ~op_id:(Int64.of_int (i + 1)) ~gen:1 set_d with
        | Ok _ -> "ok"
        | Error e -> Channel.error_to_string e)
  in
  check_bool "same seed, same fault schedule" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let storm e ~from ~n =
  for i = 0 to n - 1 do
    let p = data_packet ~id:(Int64.of_int i) (flow ()) in
    ignore (Enclave.process e ~now:(Time.add from (Time.us i)) p)
  done

let test_breaker_disabled_by_default () =
  let e = divider_enclave ~d:0L in
  storm e ~from:Time.zero ~n:20;
  check_int "every invocation faulted" 20 (Enclave.counters e).Enclave.faults;
  check_int "nothing quarantined" 0 (Enclave.counters e).Enclave.quarantined;
  check_bool "no breaker state" true (Enclave.breaker_state e "divider" = None)

let breaker_cfg =
  { Enclave.br_window = 8; br_min_samples = 4; br_threshold = 0.5; br_cooldown = Time.us 100 }

let test_breaker_trips_and_quarantines () =
  let e = divider_enclave ~d:0L in
  Enclave.set_breaker e (Some breaker_cfg);
  storm e ~from:Time.zero ~n:20;
  check_bool "breaker open" true (Enclave.breaker_state e "divider" = Some `Open);
  check_int "tripped once" 1 (Enclave.breaker_trips e "divider");
  check_int "faults cut off at the trip point" 4 (Enclave.counters e).Enclave.faults;
  check_int "the rest quarantined" 16 (Enclave.counters e).Enclave.quarantined;
  (* Quarantined packets fall through to default forwarding. *)
  let p = data_packet (flow ()) in
  match Enclave.process e ~now:(Time.us 50) p with
  | Enclave.Forward _ -> ()
  | Enclave.Dropped r -> Alcotest.failf "quarantined packet dropped: %s" r

let test_breaker_half_open_recovery () =
  let e = divider_enclave ~d:0L in
  Enclave.set_breaker e (Some breaker_cfg);
  storm e ~from:Time.zero ~n:10;
  check_bool "open" true (Enclave.breaker_state e "divider" = Some `Open);
  (* Repair the state, then probe after the cooldown. *)
  get_ok (Enclave.set_global e ~action:"divider" "D" 3L);
  let p = data_packet (flow ()) in
  ignore (Enclave.process e ~now:(Time.ms 1) p);
  check_bool "probe closed the breaker" true
    (Enclave.breaker_state e "divider" = Some `Closed);
  check_int "probe applied the policy" 2 p.Packet.priority

let test_breaker_half_open_refail () =
  let e = divider_enclave ~d:0L in
  Enclave.set_breaker e (Some breaker_cfg);
  storm e ~from:Time.zero ~n:10;
  (* Still broken: the probe faults and the breaker reopens. *)
  ignore (Enclave.process e ~now:(Time.ms 1) (data_packet (flow ())));
  check_bool "reopened" true (Enclave.breaker_state e "divider" = Some `Open);
  check_int "second trip" 2 (Enclave.breaker_trips e "divider")

let test_breaker_config_validation () =
  let e = divider_enclave ~d:1L in
  Alcotest.check_raises "window too large"
    (Invalid_argument "Enclave.set_breaker: window must be in [1, 62]") (fun () ->
      Enclave.set_breaker e (Some { breaker_cfg with Enclave.br_window = 63 }))

(* ------------------------------------------------------------------ *)
(* Snapshot / restore *)

let test_snapshot_restore_roundtrip () =
  let e = divider_enclave ~d:5L in
  get_ok (Enclave.set_global_array e ~action:"divider" "A" [| 1L; 2L |]);
  let t1 = Enclave.add_table e in
  let _ = get_ok (Enclave.add_table_rule e ~table:t1 ~pattern:Pattern.any ~action:"divider" ()) in
  let sn = Enclave.snapshot e in
  let e2 = Enclave.create ~host:2 () in
  get_ok (Enclave.restore e2 sn);
  check_bool "restored configuration equals the original" true
    (Enclave.config_equal sn (Enclave.snapshot e2));
  (* And it behaves: the restored divider applies 6/5 = 1. *)
  let p = data_packet (flow ()) in
  ignore (Enclave.process e2 ~now:Time.zero p);
  check_int "restored action runs" 1 p.Packet.priority

let test_restart_wipes_but_forwards () =
  let e = divider_enclave ~d:5L in
  ignore (Enclave.process e ~now:Time.zero (data_packet (flow ())));
  Enclave.restart e;
  check_bool "actions gone" true (Enclave.action_names e = []);
  check_int "counters reset" 0 (Enclave.counters e).Enclave.packets;
  check_int "restart counted" 1 (Enclave.restarts e);
  let p = data_packet (flow ()) in
  match Enclave.process e ~now:(Time.us 1) p with
  | Enclave.Forward _ -> check_bool "no stale policy applied" true (p.Packet.priority = 0)
  | Enclave.Dropped r -> Alcotest.failf "wiped enclave dropped the packet: %s" r

(* ------------------------------------------------------------------ *)
(* Controller: retry, rollback, reconciliation *)

let fresh_fleet ?(hosts = 2) () =
  let ctl = Controller.create ~seed:11L () in
  let enclaves =
    Array.init hosts (fun i ->
        let e = Enclave.create ~host:i () in
        Controller.register_enclave ctl e;
        e)
  in
  (ctl, enclaves)

let chan ctl h = Option.get (Controller.channel_for ctl h)

let test_retry_is_deterministic () =
  let run () =
    let ctl, _ = fresh_fleet ~hosts:1 () in
    Channel.script (chan ctl 0) [ (0, Channel.Drop); (1, Channel.Drop) ];
    get_ok (Controller.install_action_everywhere ctl divider_spec);
    let s = Controller.stats ctl in
    (s.Controller.rs_attempts, s.Controller.rs_retries, s.Controller.rs_backoff)
  in
  check_bool "same seed, same retries and jitter" true (run () = run ())

let test_retry_exhaustion_marks_divergent () =
  let ctl, enclaves = fresh_fleet () in
  (* Host 1 drops everything: the push commits anyway, host 1 diverges. *)
  Channel.script (chan ctl 1) (List.init 16 (fun i -> (i, Channel.Drop)));
  get_ok (Controller.install_action_everywhere ctl divider_spec);
  check_bool "host 0 got the action" true (Enclave.action_names enclaves.(0) = [ "divider" ]);
  check_bool "host 1 did not" true (Enclave.action_names enclaves.(1) = []);
  check_bool "host 1 divergent" true (Controller.divergent_hosts ctl = [ 1 ]);
  check_int "one giveup" 1 (Controller.stats ctl).Controller.rs_giveups;
  check_bool "not converged" true (not (Controller.converged ctl))

let test_rejection_rolls_back_and_names_divergent () =
  let ctl, enclaves = fresh_fleet () in
  (* Host 1 will reject the install (name collision with a directly
     installed action); host 0 applies it, then drops the rollback. *)
  get_ok (Enclave.install_action enclaves.(1) divider_spec);
  Channel.script (chan ctl 0) (List.init 16 (fun i -> (i + 1, Channel.Drop)));
  (match Controller.install_action_everywhere ctl divider_spec with
  | Ok () -> Alcotest.fail "expected the push to be rejected"
  | Error msg ->
    check_bool "error names the rejecting host" true (contains ~sub:"host 1 rejected" msg);
    check_bool "error names the hosts left divergent" true
      (contains ~sub:"rollback failed on hosts [0]" msg));
  check_bool "host 0 divergent" true (Controller.divergent_hosts ctl = [ 0 ]);
  check_bool "desired state clean" true
    (not (Desired.has_action (Controller.desired ctl) "divider"));
  check_int "generation unchanged" 0 (Controller.generation ctl);
  (* Reconciliation removes the orphaned action from host 0. *)
  Channel.script (chan ctl 0) [];
  (match Controller.reconcile_enclave ctl (chan ctl 0) with
  | Controller.Repaired _ -> ()
  | o -> Alcotest.failf "expected repair, got %s" (Controller.reconcile_outcome_to_string o));
  check_bool "orphan removed" true (Enclave.action_names enclaves.(0) = [])

let test_duplicates_do_not_double_bump () =
  let ctl, enclaves = fresh_fleet () in
  Channel.script (chan ctl 0) (List.init 16 (fun i -> (i, Channel.Duplicate)));
  Channel.script (chan ctl 1) (List.init 8 (fun i -> (2 * i, Channel.Ack_lost)));
  get_ok (Controller.install_action_everywhere ctl divider_spec);
  get_ok (Controller.set_global_everywhere ctl ~action:"divider" "D" 4L);
  check_int "two changes, two bumps" 2 (Controller.generation ctl);
  check_bool "retries happened" true ((Controller.stats ctl).Controller.rs_retries > 0);
  Array.iter
    (fun e ->
      check_bool "exactly one install" true (Enclave.action_names e = [ "divider" ]);
      check_bool "state bound" true (Enclave.get_global e ~action:"divider" "D" = Some 4L))
    enclaves;
  check_bool "converged" true (Controller.converged ctl)

let test_reconcile_after_restart () =
  let ctl, enclaves = fresh_fleet () in
  get_ok (Controller.install_action_everywhere ctl divider_spec);
  get_ok (Controller.set_global_everywhere ctl ~action:"divider" "D" 4L);
  get_ok (Controller.add_rule_everywhere ctl ~pattern:Pattern.any ~action:"divider" ());
  check_bool "converged before the crash" true (Controller.converged ctl);
  Channel.inject_restart (chan ctl 1);
  check_bool "restart breaks convergence" true (not (Controller.converged ctl));
  check_int "watermark wiped" 0 (Channel.acked_generation (chan ctl 1));
  (match List.assoc 1 (Controller.reconcile ctl) with
  | Controller.Repaired n -> check_bool "several repair ops" true (n >= 3)
  | o -> Alcotest.failf "expected repair, got %s" (Controller.reconcile_outcome_to_string o));
  check_bool "converged after reconcile" true (Controller.converged ctl);
  check_int "watermark caught up" (Controller.generation ctl)
    (Channel.acked_generation (chan ctl 1));
  check_bool "restored binding" true
    (Enclave.get_global enclaves.(1) ~action:"divider" "D" = Some 4L)

let test_partition_heal_convergence () =
  let ctl, enclaves = fresh_fleet () in
  get_ok
    (Policy.flow_scheduling ctl ~scheme:`Pias ~cdf:[ (1.0e6, 0.5); (2.0e6, 1.0) ] ());
  Channel.set_partitioned (chan ctl 1) true;
  get_ok
    (Policy.update_flow_scheduling_thresholds ctl ~scheme:`Pias
       ~cdf:[ (100.0, 0.5); (200.0, 1.0) ] ());
  check_bool "divergent while partitioned" true (Controller.divergent_hosts ctl = [ 1 ]);
  check_bool "stale thresholds still bound" true
    (match Enclave.get_global_array enclaves.(1) ~action:"pias" "Thresholds" with
    | Some a -> Array.length a > 0 && a.(0) > 1000L
    | None -> false);
  Channel.set_partitioned (chan ctl 1) false;
  (match List.assoc 1 (Controller.reconcile ctl) with
  | Controller.Repaired _ -> ()
  | o -> Alcotest.failf "expected repair, got %s" (Controller.reconcile_outcome_to_string o));
  check_bool "converged after heal" true (Controller.converged ctl);
  check_bool "fresh thresholds bound" true
    (match Enclave.get_global_array enclaves.(1) ~action:"pias" "Thresholds" with
    | Some a -> Array.length a > 0 && a.(0) <= 1000L
    | None -> false)

let test_reports_include_resilience_columns () =
  let ctl, _ = fresh_fleet ~hosts:1 () in
  get_ok (Controller.install_action_everywhere ctl divider_spec);
  Channel.inject_restart (chan ctl 0);
  match Controller.collect_reports ctl with
  | [ r ] ->
    check_int "restart visible in the report" 1 r.Controller.er_restarts;
    check_int "watermark visible in the report" 0 r.Controller.er_generation
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Chaos scenarios under the CI seed *)

let test_chaos_scenarios_pass () =
  let reports = Chaos.run_all ~seed:42L () in
  check_int "all scenarios ran" (List.length Chaos.scenario_names) (List.length reports);
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          if not c.Chaos.ck_ok then
            Alcotest.failf "%s: %s — %s" r.Chaos.r_scenario c.Chaos.ck_name c.Chaos.ck_detail)
        r.Chaos.r_checks)
    reports;
  check_bool "chaos suite green" true (Chaos.all_passed reports)

let test_chaos_deterministic () =
  let strip r = (r.Chaos.r_scenario, r.Chaos.r_checks, r.Chaos.r_ops_sent, r.Chaos.r_faults_injected) in
  check_bool "same seed, same run" true
    (List.map strip (Chaos.run_all ~seed:7L ()) = List.map strip (Chaos.run_all ~seed:7L ()))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "eden_resilience"
    [
      ( "channel",
        [
          Alcotest.test_case "drop" `Quick test_channel_drop;
          Alcotest.test_case "ack lost + retry" `Quick test_channel_ack_lost_then_retry;
          Alcotest.test_case "duplicate delivery" `Quick test_channel_duplicate_is_exactly_once;
          Alcotest.test_case "delayed delivery" `Quick test_channel_delay;
          Alcotest.test_case "crash restart" `Quick test_channel_crash_restart;
          Alcotest.test_case "partition" `Quick test_channel_partition;
          Alcotest.test_case "random faults deterministic" `Quick
            test_channel_random_faults_deterministic;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "disabled by default" `Quick test_breaker_disabled_by_default;
          Alcotest.test_case "trips and quarantines" `Quick test_breaker_trips_and_quarantines;
          Alcotest.test_case "half-open recovery" `Quick test_breaker_half_open_recovery;
          Alcotest.test_case "half-open refail" `Quick test_breaker_half_open_refail;
          Alcotest.test_case "config validation" `Quick test_breaker_config_validation;
        ] );
      ( "soft state",
        [
          Alcotest.test_case "snapshot/restore roundtrip" `Quick test_snapshot_restore_roundtrip;
          Alcotest.test_case "restart wipes but forwards" `Quick test_restart_wipes_but_forwards;
        ] );
      ( "controller",
        [
          Alcotest.test_case "retry deterministic" `Quick test_retry_is_deterministic;
          Alcotest.test_case "exhaustion marks divergent" `Quick
            test_retry_exhaustion_marks_divergent;
          Alcotest.test_case "rejection rolls back, names divergent" `Quick
            test_rejection_rolls_back_and_names_divergent;
          Alcotest.test_case "duplicates do not double-bump" `Quick
            test_duplicates_do_not_double_bump;
          Alcotest.test_case "reconcile after restart" `Quick test_reconcile_after_restart;
          Alcotest.test_case "partition/heal convergence" `Quick
            test_partition_heal_convergence;
          Alcotest.test_case "reports carry resilience columns" `Quick
            test_reports_include_resilience_columns;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "scenarios pass under CI seed" `Quick test_chaos_scenarios_pass;
          Alcotest.test_case "runs are deterministic" `Quick test_chaos_deterministic;
        ] );
    ]
