(* Telemetry layer (lib/telemetry) and its instrumentation hooks.

   Pins the histogram's log-linear bucket geometry (merge exactness
   depends on every instance agreeing on boundaries), checks that
   merging per-shard registries reproduces sequential totals on random
   Progen programs, freezes the flight recorder's seeded sampling and
   the exposition formats (Prometheus / JSON goldens, round-trip through
   the JSON parser), and exercises the bench-baseline comparator that
   backs bench/check_regress.exe. *)

module Tel = Eden_telemetry
module Counter = Tel.Counter
module Gauge = Tel.Gauge
module Histogram = Tel.Histogram
module Registry = Tel.Registry
module Trace = Tel.Trace
module Json = Tel.Json
module Export = Tel.Export
module Regress = Tel.Regress
module Enclave = Eden_enclave.Enclave
module Shard = Eden_enclave.Shard
module Shardclass = Eden_bytecode.Shardclass
module Program = Eden_bytecode.Program
module Verifier = Eden_bytecode.Verifier
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Time = Eden_base.Time
module Rng = Eden_base.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let get_ok = function Ok v -> v | Error m -> Alcotest.failf "unexpected error: %s" m

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Histogram: pinned bucket geometry *)

let test_histogram_boundaries () =
  (* The first two octaves [0,16) are linear with width-1 buckets. *)
  for v = 0 to 15 do
    check_int (Printf.sprintf "bucket_of %d" v) v (Histogram.bucket_of v)
  done;
  check_int "negative clamps to 0" 0 (Histogram.bucket_of (-5));
  check_int "huge clamps to last" (Histogram.n_buckets - 1) (Histogram.bucket_of max_int);
  (* Log-linear region, pinned: 8 sub-buckets per octave. *)
  List.iter
    (fun (v, b) -> check_int (Printf.sprintf "bucket_of %d" v) b (Histogram.bucket_of v))
    [ (16, 16); (29, 22); (30, 23); (31, 23); (32, 24); (100, 36); (1000, 63) ];
  List.iter
    (fun (i, lo) ->
      check_int (Printf.sprintf "lower_bound %d" i) lo (Histogram.lower_bound i))
    [ (0, 0); (7, 7); (15, 15); (16, 16); (22, 28); (23, 30); (24, 32); (36, 96) ];
  (* The geometry is self-consistent: every bucket contains its own
     lower bound, and the previous value falls in an earlier bucket. *)
  for i = 0 to 100 do
    let lo = Histogram.lower_bound i in
    check_int "lower bound maps to its bucket" i (Histogram.bucket_of lo);
    if lo > 0 then
      check_bool "predecessor in an earlier bucket" true (Histogram.bucket_of (lo - 1) < i)
  done

let test_histogram_stats () =
  let h = Histogram.create () in
  check_int "empty percentile" 0 (Histogram.percentile h 99.0);
  List.iter (Histogram.observe h) [ 3; 3; 5; 100; 1000 ];
  check_int "count" 5 (Histogram.count h);
  check_int "sum" 1111 (Histogram.sum h);
  check_int "max" 1000 (Histogram.max_value h);
  check_bool "mean" true (Float.abs (Histogram.mean h -. 222.2) < 0.01);
  (* p50 of [3;3;5;100;1000] sits on 5 -> upper bound of bucket 5 is 6. *)
  check_int "p50" 6 (Histogram.percentile h 50.0);
  Histogram.observe_ns h 7.9;
  check_int "observe_ns truncates" 7 (Histogram.max_value (let x = Histogram.create () in Histogram.observe_ns x 7.9; x));
  Histogram.reset h;
  check_int "reset count" 0 (Histogram.count h);
  check_int "reset sum" 0 (Histogram.sum h)

let test_histogram_merge () =
  (* Merging N instances is exactly the one-instance run: boundaries are
     a pure function of the index, so bucket-wise addition loses
     nothing. *)
  let rand = Random.State.make [| 0x7E1E |] in
  let parts = Array.init 4 (fun _ -> Histogram.create ()) in
  let whole = Histogram.create () in
  for _ = 1 to 10_000 do
    let v = Random.State.int rand 100_000 in
    Histogram.observe parts.(Random.State.int rand 4) v;
    Histogram.observe whole v
  done;
  let merged = Histogram.create () in
  Array.iter (fun p -> Histogram.merge_into merged p) parts;
  check_int "count" (Histogram.count whole) (Histogram.count merged);
  check_int "sum" (Histogram.sum whole) (Histogram.sum merged);
  check_int "max" (Histogram.max_value whole) (Histogram.max_value merged);
  check_bool "buckets" true (Histogram.buckets whole = Histogram.buckets merged)

(* ------------------------------------------------------------------ *)
(* Registry *)

let find_sample samples name =
  match List.find_opt (fun s -> s.Registry.s_name = name) samples with
  | Some s -> s
  | None -> Alcotest.failf "sample %s not scraped" name

let counter_value samples name =
  match (find_sample samples name).Registry.s_value with
  | Registry.Counter v -> v
  | _ -> Alcotest.failf "%s is not a counter" name

let test_registry_basic () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"h" "c_total" in
  let g = Registry.gauge r "g" in
  let h = Registry.histogram r "h_ns" in
  Counter.add c 3;
  Counter.inc c;
  Gauge.set g 2.5;
  Histogram.observe h 9;
  (* get-or-create returns the same cell; a kind clash is a bug. *)
  Counter.inc (Registry.counter r "c_total");
  check_int "shared cell" 5 (Counter.get c);
  check_bool "kind mismatch rejected" true
    (match Registry.gauge r "c_total" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let samples = Registry.scrape r in
  check_int "scrape size" 3 (List.length samples);
  check_string "registration order" "c_total"
    (List.nth samples 0).Registry.s_name;
  check_int "counter sampled" 5 (counter_value samples "c_total");
  Registry.reset r;
  check_int "reset" 0 (Counter.get c);
  check_int "reset histogram" 0 (Histogram.count h)

let test_registry_merge () =
  let mk na nb =
    let r = Registry.create () in
    Counter.add (Registry.counter r "m_total") na;
    Gauge.set (Registry.gauge r "m_gauge") (float_of_int na);
    Histogram.observe (Registry.histogram r "m_ns") nb;
    Registry.scrape r
  in
  let merged = Registry.merge [ mk 2 10; mk 5 100 ] in
  check_int "merged size" 3 (List.length merged);
  check_int "counters sum" 7 (counter_value merged "m_total");
  (match (find_sample merged "m_gauge").Registry.s_value with
  | Registry.Gauge v -> check_bool "gauges sum" true (v = 7.0)
  | _ -> Alcotest.fail "gauge kind");
  (match (find_sample merged "m_ns").Registry.s_value with
  | Registry.Histogram { count; sum; max; buckets } ->
    check_int "histogram count" 2 count;
    check_int "histogram sum" 110 sum;
    check_int "histogram max" 100 max;
    check_int "histogram buckets" 2 (List.length buckets)
  | _ -> Alcotest.fail "histogram kind")

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let drive tr n =
  (* Feed n packet ticks; record a fixed stage breakdown into sampled
     slots and return the sampled packet ids, oldest first. *)
  let sampled = ref [] in
  for i = 1 to n do
    if Trace.begin_packet tr ~now:(Time.us i) ~pkt_id:(Int64.of_int i) then begin
      sampled := Int64.of_int i :: !sampled;
      Trace.set_classify tr 10.0;
      Trace.set_match tr 5.0;
      Trace.set_action tr "act" 20.0;
      Trace.finish tr ~verdict:Trace.Forwarded ~total_ns:40.0
    end
  done;
  List.rev !sampled

let test_trace_sampling_deterministic () =
  let seed = Rng.stream_seed 42L 3 in
  let mk () = Trace.create ~seed ~every:8 ~capacity:64 () in
  let a = drive (mk ()) 200 in
  let b = drive (mk ()) 200 in
  check_bool "same seed, same samples" true (a = b);
  check_int "1-in-8 of 200" 25 (List.length a);
  (* Sampled ticks are exactly [every] apart: the phase is fixed. *)
  (match a with
  | p0 :: p1 :: _ -> check_bool "phase spacing" true (Int64.sub p1 p0 = 8L)
  | _ -> Alcotest.fail "no samples");
  (* clear restarts the phase: a cleared recorder replays identically. *)
  let tr = mk () in
  ignore (drive tr 200);
  Trace.clear tr;
  check_int "cleared" 0 (List.length (Trace.events tr));
  check_bool "replay after clear" true (drive tr 200 = a)

let test_trace_ring_and_events () =
  let tr = Trace.create ~every:1 ~capacity:4 () in
  ignore (drive tr 10);
  check_int "recorded counts all" 10 (Trace.recorded tr);
  let evs = Trace.events tr in
  check_int "ring keeps capacity" 4 (List.length evs);
  check_bool "newest first" true
    (List.map (fun e -> e.Trace.ev_pkt_id) evs = [ 10L; 9L; 8L; 7L ]);
  let e = List.hd evs in
  check_bool "stages recorded" true
    (e.Trace.ev_classify_ns = 10.0 && e.Trace.ev_match_ns = 5.0
    && e.Trace.ev_action = "act" && e.Trace.ev_action_ns = 20.0
    && e.Trace.ev_total_ns = 40.0 && e.Trace.ev_verdict = Trace.Forwarded);
  (* Stage setters without an open slot must be harmless no-ops. *)
  let idle = Trace.create ~every:1_000_000 ~capacity:4 () in
  ignore (Trace.begin_packet idle ~now:Time.zero ~pkt_id:1L);
  Trace.set_classify idle 1.0;
  Trace.finish idle ~verdict:Trace.Dropped ~total_ns:1.0;
  check_int "nothing recorded" 0 (Trace.recorded idle)

let test_trace_on_enclave () =
  let run () =
    let e = Enclave.create ~host:1 ~seed:11L () in
    get_ok (Eden_functions.Pias.install ~variant:`Compiled e ~thresholds:[| 4000L |]);
    Enclave.set_trace e (Some (Trace.create ~seed:11L ~every:4 ~capacity:16 ()));
    let flow =
      Addr.five_tuple ~src:(Addr.endpoint 1 1000) ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp
    in
    for i = 1 to 40 do
      ignore
        (Enclave.process e ~now:(Time.us i)
           (Packet.make ~id:(Int64.of_int i) ~flow ~kind:Packet.Data ~payload:1000 ()))
    done;
    Option.get (Enclave.trace e)
  in
  let tr = run () in
  check_int "1-in-4 of 40" 10 (Trace.recorded tr);
  List.iter
    (fun e ->
      check_string "action attributed" "pias" e.Trace.ev_action;
      check_bool "total covers stages" true
        (e.Trace.ev_total_ns
         >= e.Trace.ev_classify_ns +. e.Trace.ev_match_ns +. e.Trace.ev_action_ns -. 0.01);
      check_bool "verdict" true (e.Trace.ev_verdict = Trace.Forwarded))
    (Trace.events tr);
  (* Same enclave seed, same stream: the dump is replayable. *)
  let ids t = List.map (fun e -> e.Trace.ev_pkt_id) (Trace.events t) in
  check_bool "deterministic" true (ids tr = ids (run ()))

(* ------------------------------------------------------------------ *)
(* Per-shard merge vs sequential totals (Progen differential) *)

let rename_progen_slots (p : Program.t) =
  let slots = Array.map (fun s -> s) p.Program.scalar_slots in
  slots.(0) <- { (slots.(0)) with Program.s_name = "Size" };
  slots.(1) <- { (slots.(1)) with Program.s_name = "Priority" };
  { p with Program.scalar_slots = slots }

let install_progen p arrays =
  let e = Enclave.create ~host:1 () in
  Enclave.set_budget_ns e 1e12;
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = p.Program.name; i_impl = Enclave.Interpreted p; i_msg_sources = [] });
  get_ok (Enclave.set_global_array e ~action:p.Program.name "A" (Array.copy arrays.(0)));
  get_ok (Enclave.set_global_array e ~action:p.Program.name "B" (Array.copy arrays.(1)));
  ignore
    (get_ok
       (Enclave.add_table_rule e
          ~pattern:(Option.get (Eden_base.Class_name.Pattern.of_string "*.*.*"))
          ~action:p.Program.name ()));
  e

let test_shard_merge_totals () =
  let rand = Random.State.make [| 0x7E13 |] in
  let mk_pkt i =
    Packet.make ~id:(Int64.of_int i)
      ~flow:
        (Addr.five_tuple
           ~src:(Addr.endpoint 1 (1000 + (i mod 8)))
           ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp)
      ~kind:Packet.Data ~seq:i
      ~payload:(100 + (37 * i mod 1400))
      ~metadata:Metadata.empty ()
  in
  let events = Array.init 48 (fun i -> Shard.Ev_packet (Time.us (10 * (i + 1)), mk_pkt i)) in
  let cases = ref 0 in
  while !cases < 25 do
    let raw, _scalars, arrays = Progen.gen_structured rand in
    let p = rename_progen_slots raw in
    get_ok (Result.map_error Verifier.error_to_string (Verifier.verify p));
    (* Shard RNG streams differ from the sequential enclave's by
       construction, so only deterministic programs can be compared. *)
    if not (Shardclass.uses_rand p) then begin
      incr cases;
      let seq = install_progen p arrays in
      Array.iter
        (function
          | Shard.Ev_packet (now, pkt) -> ignore (Enclave.process seq ~now pkt)
          | _ -> ())
        events;
      let seq_samples = Enclave.scrape seq in
      let source = install_progen p arrays in
      let s = get_ok (Shard.create ~shards:3 ~parallel:false source) in
      ignore (Shard.process_stream s events);
      check_int "no worker errors" 0 (Shard.worker_errors s);
      let merged = Shard.scrape s in
      (* Cluster totals must equal the sequential run's for everything
         that does not depend on per-replica cache warmth... *)
      List.iter
        (fun name ->
          check_int name (counter_value seq_samples name) (counter_value merged name))
        [
          "eden_enclave_packets_total";
          "eden_enclave_invocations_total";
          "eden_enclave_dropped_total";
          "eden_enclave_faults_total";
          "eden_enclave_interp_steps_total";
        ];
      (* ... and each replica cache still sees every packet exactly once:
         the hit/miss split shifts, the lookup total cannot. *)
      let lookups samples =
        counter_value samples "eden_enclave_flow_cache_hits_total"
        + counter_value samples "eden_enclave_flow_cache_misses_total"
      in
      check_int "cache lookups" (lookups seq_samples) (lookups merged);
      Shard.stop s
    end
  done

(* ------------------------------------------------------------------ *)
(* Exposition goldens *)

let golden_registry () =
  let r = Registry.create () in
  Counter.add (Registry.counter r ~help:"test counter" "t_total") 42;
  Gauge.set (Registry.gauge r ~help:"a gauge" "t_gauge") 1.5;
  let h = Registry.histogram r ~help:"a hist" "t_ns" in
  Histogram.observe h 3;
  Histogram.observe h 100;
  Registry.scrape r

let test_prometheus_golden () =
  let expected =
    "# HELP t_total test counter\n# TYPE t_total counter\nt_total 42\n"
    ^ "# HELP t_gauge a gauge\n# TYPE t_gauge gauge\nt_gauge 1.5\n"
    ^ "# HELP t_ns a hist\n# TYPE t_ns histogram\n"
    ^ "t_ns_bucket{le=\"4\"} 1\nt_ns_bucket{le=\"104\"} 2\nt_ns_bucket{le=\"+Inf\"} 2\n"
    ^ "t_ns_sum 103\nt_ns_count 2\n"
  in
  check_string "prometheus exposition" expected (Export.to_prometheus (golden_registry ()))

let test_json_golden_roundtrip () =
  let samples = golden_registry () in
  let expected =
    "{\"metrics\":[{\"name\":\"t_total\",\"help\":\"test counter\",\"kind\":\"counter\",\"value\":42},"
    ^ "{\"name\":\"t_gauge\",\"help\":\"a gauge\",\"kind\":\"gauge\",\"value\":1.5},"
    ^ "{\"name\":\"t_ns\",\"help\":\"a hist\",\"kind\":\"histogram\",\"count\":2,\"sum\":103,\"max\":100,"
    ^ "\"buckets\":[{\"le\":4,\"count\":1},{\"le\":104,\"count\":1}]}]}"
  in
  let str = Export.to_json_string samples in
  check_string "json exposition" expected str;
  (* Round-trip: the document reparses and the values survive. *)
  let j = get_ok (Json.parse str) in
  let metrics = Option.get (Json.to_list (Option.get (Json.member "metrics" j))) in
  check_int "metric count" 3 (List.length metrics);
  let counter = List.hd metrics in
  check_bool "name" true (Json.member "name" counter = Some (Json.Str "t_total"));
  check_bool "value" true
    (Option.bind (Json.member "value" counter) Json.to_int = Some 42);
  (* The human table renders every sample once. *)
  let table = Export.to_table samples in
  List.iter
    (fun s -> check_bool (s.Registry.s_name ^ " in table") true (contains table s.Registry.s_name))
    samples

(* ------------------------------------------------------------------ *)
(* Regress comparator *)

let row ?(section = "micro") ?(quick = true) ?steps name ns =
  {
    Regress.r_section = section;
    r_name = name;
    r_quick = quick;
    r_ns_per_op = ns;
    r_steps = steps;
  }

let baseline ?(cores = 1) ?(tol = 2.0) rows =
  {
    Regress.b_cores = cores;
    b_default_tol = tol;
    b_tols = [];
    b_core_sensitive = Regress.default_core_sensitive;
    b_min_ns = Regress.default_min_ns;
    b_rows = rows;
  }

let test_regress_pass_and_fail () =
  let rows = [ row ~steps:24 "a" 100.0; row "b" 50.0 ] in
  let b = baseline rows in
  (* A fresh identical run passes. *)
  let ok = Regress.compare b rows ~cores:1 in
  check_int "no regressions" 0 ok.Regress.regressions;
  check_int "all compared" 2 ok.Regress.compared;
  (* A perturbed timing beyond baseline*(1+tol) regresses. *)
  let bad = Regress.compare b [ row ~steps:24 "a" 100.0; row "b" 151.0 ] ~cores:1 in
  check_int "timing regression" 1 bad.Regress.regressions;
  (* Inside the band: fine. *)
  let near = Regress.compare b [ row ~steps:24 "a" 100.0; row "b" 149.0 ] ~cores:1 in
  check_int "inside tolerance" 0 near.Regress.regressions;
  (* A steps mismatch is deterministic and always regresses, even when
     the timing is fine. *)
  let steps = Regress.compare b [ row ~steps:25 "a" 100.0; row "b" 50.0 ] ~cores:1 in
  check_int "steps regression" 1 steps.Regress.regressions;
  check_bool "steps finding" true
    (List.exists
       (function Regress.Steps_mismatch _ -> true | _ -> false)
       steps.Regress.findings);
  (* Missing baseline row regresses; a new row does not. *)
  let missing = Regress.compare b [ row ~steps:24 "a" 100.0 ] ~cores:1 in
  check_int "missing row" 1 missing.Regress.regressions;
  let extra = Regress.compare b (rows @ [ row "c" 10.0 ]) ~cores:1 in
  check_int "new row is not a regression" 0 extra.Regress.regressions;
  check_bool "new row reported" true
    (List.exists (function Regress.New_row _ -> true | _ -> false) extra.Regress.findings)

let test_regress_core_skip_and_floor () =
  (* Core-sensitive sections recorded on a bigger box are skipped loudly
     on a smaller one — including their missing rows. *)
  let b =
    baseline ~cores:8
      [ row "a" 100.0; row ~section:"parallel" "p/shards=4" 500.0 ]
  in
  let r = Regress.compare b [ row "a" 100.0 ] ~cores:1 in
  check_int "no regression" 0 r.Regress.regressions;
  check_bool "skip is loud" true (List.mem "parallel" r.Regress.skipped_sections);
  check_bool "skip renders" true (contains (Regress.render r) "SKIPPED");
  (* Same machine (or bigger): the section is compared again. *)
  let r8 = Regress.compare b [ row "a" 100.0 ] ~cores:8 in
  check_int "missing parallel row counts on equal cores" 1 r8.Regress.regressions;
  (* Sub-noise-floor rows never produce timing findings, only steps. *)
  let b2 = baseline [ row ~steps:3 "tiny" 2.0 ] in
  let noisy = Regress.compare b2 [ row ~steps:3 "tiny" 60.0 ] ~cores:1 in
  check_int "below min_ns: timing ignored" 0 noisy.Regress.regressions;
  let wrong = Regress.compare b2 [ row ~steps:4 "tiny" 2.0 ] ~cores:1 in
  check_int "below min_ns: steps still checked" 1 wrong.Regress.regressions

let test_regress_json_roundtrip () =
  let b =
    {
      (baseline ~cores:2 [ row ~steps:24 "a" 100.25; row ~section:"parallel" "p" 7.5 ]) with
      Regress.b_tols = [ ("micro", 1.5) ];
    }
  in
  let j = get_ok (Json.parse (Json.to_string_pretty (Regress.baseline_to_json b))) in
  let b2 = get_ok (Regress.parse_baseline j) in
  check_bool "baseline round-trips" true (b = b2);
  (* And the bench --json shape (bare array, null steps) parses. *)
  let rows =
    get_ok
      (Result.bind
         (Json.parse
            "[{\"section\": \"micro\", \"name\": \"x\", \"params\": {\"quick\": false}, \
             \"ns_per_op\": 12.5, \"steps\": null}]")
         Regress.parse_rows)
  in
  check_bool "bench rows parse" true (rows = [ row ~quick:false "x" 12.5 ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "pinned boundaries" `Quick test_histogram_boundaries;
          Alcotest.test_case "stats" `Quick test_histogram_stats;
          Alcotest.test_case "merge equals sequential" `Quick test_histogram_merge;
        ] );
      ( "registry",
        [
          Alcotest.test_case "cells and scrape" `Quick test_registry_basic;
          Alcotest.test_case "merge" `Quick test_registry_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sampling determinism" `Quick test_trace_sampling_deterministic;
          Alcotest.test_case "ring and events" `Quick test_trace_ring_and_events;
          Alcotest.test_case "enclave integration" `Quick test_trace_on_enclave;
        ] );
      ( "shard-merge",
        [ Alcotest.test_case "progen totals" `Quick test_shard_merge_totals ] );
      ( "export",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "json golden + roundtrip" `Quick test_json_golden_roundtrip;
        ] );
      ( "regress",
        [
          Alcotest.test_case "pass and fail" `Quick test_regress_pass_and_fail;
          Alcotest.test_case "core skip and noise floor" `Quick test_regress_core_skip_and_floor;
          Alcotest.test_case "json roundtrip" `Quick test_regress_json_roundtrip;
        ] );
    ]
